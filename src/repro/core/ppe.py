"""The Packet Processing Engine: application interface and runtime.

The PPE is the programmable element in every FlexSFP shell (Figure 1).
Applications implement :class:`PPEApplication` — a functional ``process``
method (what the logic does to each packet) plus a ``pipeline_spec`` (what
the logic costs to synthesize).  The :class:`PacketProcessingEngine` runs
applications inside the discrete-event simulation as a single server whose
service time comes from the synthesized :class:`TimingSpec`, so overload,
queueing, and loss emerge from the same arithmetic the paper uses for its
line-rate claims.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from enum import Enum
from typing import TYPE_CHECKING, Callable

from ..errors import SimulationError
from ..fpga.timing import TimingSpec
from ..packet import Packet

if TYPE_CHECKING:  # pragma: no cover - break the hls<->core import cycle
    from ..hls.ir import PipelineSpec
from ..sim.engine import Simulator
from ..sim.stats import Counter, Histogram
from .tables import TableRegistry


class Direction(Enum):
    """Which way a packet is traversing the module."""

    EDGE_TO_LINE = "edge->line"  # host/switch toward the fiber
    LINE_TO_EDGE = "line->edge"  # fiber toward the host/switch

    @property
    def reverse(self) -> "Direction":
        return (
            Direction.LINE_TO_EDGE
            if self is Direction.EDGE_TO_LINE
            else Direction.EDGE_TO_LINE
        )


class Verdict(Enum):
    """Outcome of processing one packet."""

    PASS = "pass"  # forward toward the packet's natural egress
    DROP = "drop"
    REFLECT = "reflect"  # send back out the ingress interface
    TO_CPU = "to_cpu"  # hand to the embedded control plane


class PPEContext:
    """Per-packet context handed to applications.

    ``emit`` lets an application originate additional packets (telemetry
    reports, mirrored frames); emitted packets leave through the interface
    for the given direction after the current packet completes.
    """

    __slots__ = ("time_ns", "direction", "device_id", "queue_depth", "_emitted")

    def __init__(
        self,
        time_ns: int,
        direction: Direction,
        device_id: int = 0,
        queue_depth: int = 0,
    ) -> None:
        self.time_ns = time_ns
        self.direction = direction
        self.device_id = device_id
        self.queue_depth = queue_depth
        self._emitted: list[tuple[Packet, Direction]] = []

    def emit(self, packet: Packet, direction: Direction) -> None:
        """Queue an application-originated packet for transmission."""
        self._emitted.append((packet, direction))

    @property
    def emitted(self) -> list[tuple[Packet, Direction]]:
        return self._emitted


class PPEApplication(ABC):
    """A packet function deployable into a FlexSFP PPE.

    Subclasses populate ``self.tables`` with their match-action state (the
    control plane reads/writes through that registry) and keep functional
    statistics in ``self.counters``.
    """

    name: str = "app"

    def __init__(self) -> None:
        self.tables = TableRegistry()
        self.counters: dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Get-or-create a named statistics counter."""
        if name not in self.counters:
            self.counters[name] = Counter(f"{self.name}.{name}")
        return self.counters[name]

    @abstractmethod
    def pipeline_spec(self) -> "PipelineSpec":
        """The hardware pipeline this application synthesizes to."""

    @abstractmethod
    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        """Process one packet (mutating it in place); return a verdict."""

    def config(self) -> dict:
        """Serializable constructor parameters (stored in bitstreams)."""
        return {}

    def counters_snapshot(self) -> dict[str, dict[str, int]]:
        return {name: c.snapshot() for name, c in self.counters.items()}


DoneCallback = Callable[[Packet, Verdict, list[tuple[Packet, Direction]]], None]


class PacketProcessingEngine:
    """Queueing server that executes an application at synthesized speed.

    Service time per frame is ``TimingSpec.frame_service_time`` —  the
    number of datapath beats the frame occupies.  Packets arriving while
    the engine is busy wait in a bounded ingress FIFO; overflow is counted
    and dropped, which is exactly how the Two-Way-Core shell falls off
    line rate when it is not clocked up (Figure 1 discussion).
    """

    def __init__(
        self,
        sim: Simulator,
        app: PPEApplication,
        timing: TimingSpec,
        queue_bytes: int = 32 * 1024,
        device_id: int = 0,
    ) -> None:
        self.sim = sim
        self.app = app
        self.timing = timing
        self.queue_bytes = queue_bytes
        self.device_id = device_id
        self._fifo: deque[tuple[Packet, Direction, DoneCallback]] = deque()
        self._fifo_bytes = 0
        self._busy = False
        self.processed = Counter("ppe.processed")
        self.overload_drops = Counter("ppe.overload_drops")
        self.verdict_counts: dict[Verdict, int] = {v: 0 for v in Verdict}
        self.latency_ns = Histogram.exponential(start=50.0, factor=2.0, count=16)

    @property
    def pipeline_latency_s(self) -> float:
        """Fixed pipeline fill latency (depth cycles at the PPE clock)."""
        depth = self.app.pipeline_spec().pipeline_depth
        return depth / self.timing.clock_hz

    def submit(self, packet: Packet, direction: Direction, done: DoneCallback) -> bool:
        """Offer a packet to the engine; False when the ingress FIFO drops."""
        size = packet.wire_len
        if self._fifo_bytes + size > self.queue_bytes:
            self.overload_drops.count(size)
            return False
        packet.meta.setdefault("ppe_enqueue_ns", int(self.sim.now * 1e9))
        self._fifo.append((packet, direction, done))
        self._fifo_bytes += size
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self._fifo:
            self._busy = False
            return
        self._busy = True
        packet, direction, done = self._fifo.popleft()
        self._fifo_bytes -= packet.wire_len
        service = self.timing.frame_service_time(packet.wire_len)
        self.sim.schedule(service, self._finish, packet, direction, done)

    def _finish(self, packet: Packet, direction: Direction, done: DoneCallback) -> None:
        # The frame has streamed through; apply the functional behaviour,
        # then deliver after the pipeline fill latency.
        ctx = PPEContext(
            time_ns=int(self.sim.now * 1e9),
            direction=direction,
            device_id=self.device_id,
            queue_depth=self._fifo_bytes,
        )
        verdict = self.app.process(packet, ctx)
        if not isinstance(verdict, Verdict):
            raise SimulationError(
                f"application {self.app.name!r} returned {verdict!r} "
                "instead of a Verdict"
            )
        self.processed.count(packet.wire_len)
        self.verdict_counts[verdict] += 1
        enqueue_ns = packet.meta.get("ppe_enqueue_ns", int(self.sim.now * 1e9))
        self.sim.schedule(
            self.pipeline_latency_s,
            self._deliver,
            packet,
            verdict,
            ctx.emitted,
            done,
            enqueue_ns,
        )
        self._start_next()

    def _deliver(
        self,
        packet: Packet,
        verdict: Verdict,
        emitted: list[tuple[Packet, Direction]],
        done: DoneCallback,
        enqueue_ns: int,
    ) -> None:
        self.latency_ns.add(int(self.sim.now * 1e9) - enqueue_ns)
        done(packet, verdict, emitted)

    def stats(self) -> dict[str, object]:
        return {
            "processed": self.processed.snapshot(),
            "overload_drops": self.overload_drops.snapshot(),
            "verdicts": {v.value: n for v, n in self.verdict_counts.items()},
            "latency_ns": self.latency_ns.snapshot(),
        }
