"""The Packet Processing Engine: application interface and runtime.

The PPE is the programmable element in every FlexSFP shell (Figure 1).
Applications implement :class:`PPEApplication` — a functional ``process``
method (what the logic does to each packet) plus a ``pipeline_spec`` (what
the logic costs to synthesize).  The :class:`PacketProcessingEngine` runs
applications inside the discrete-event simulation as a single server whose
service time comes from the synthesized :class:`TimingSpec`, so overload,
queueing, and loss emerge from the same arithmetic the paper uses for its
line-rate claims.

Two optional execution modes accelerate large simulations without changing
their results:

* **Fast path** (``flow_cache``): applications that expose a
  :meth:`PPEApplication.flow_key` / :meth:`PPEApplication.decide` pair get
  an exact-match LRU flow cache in front of ``process``.  Repeat packets
  of a decided flow replay the cached :class:`FlowRecipe` instead of
  re-running the program; control-plane table writes invalidate entries
  via the registry generation counter.
* **Batching** (``batch_size > 1``): the engine drains up to K queued
  frames per scheduled event instead of one, amortizing heap and callback
  overhead.  Service times are still accumulated per frame on a
  :class:`~repro.sim.engine.ServiceTimeline`, so per-frame start/finish
  timestamps — and therefore queueing, overload, and latency statistics —
  are identical to the event-per-frame execution.  Frames are *processed*
  at the batch boundary and *delivered* once per batch, so downstream
  egress times may shift by up to one batch window; single-frame batches
  are exactly the unbatched schedule.
* **Compiled bursts** (``program`` + :meth:`PacketProcessingEngine.submit_burst`):
  the compiled engine tier hands the engine whole same-flow bursts as one
  template packet plus a struct-of-arrays vector of per-frame arrival
  times.  Admission replays the batched reservation arithmetic (vectorised
  where that stays bit-exact), and processing collapses each due slice
  into one :meth:`~repro.core.flowcache.FlowRecipe.apply_burst` with O(1)
  counter and histogram updates.  Anything the fused contract cannot
  express — a tracer attached, per-frame arrivals interleaved, a flow the
  application opts out of, a verdict beyond PASS/DROP, application
  emissions — *deopts*: those frames materialize into the batched
  per-frame lane and take the exact reference arithmetic, so compiled
  results are bit-identical to the reference engine by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from enum import Enum
from typing import TYPE_CHECKING, Callable, Hashable

import numpy as np

from .._util import warn_deprecated
from ..errors import SimulationError
from ..fpga.timing import TimingSpec
from ..packet import Packet

if TYPE_CHECKING:  # pragma: no cover - break the hls<->core import cycle
    from ..hls.executor import CompiledProgram
    from ..hls.ir import PipelineSpec
from ..sim.burst import bounded_admissions, chain_reservations
from ..sim.engine import ServiceTimeline, Simulator
from ..sim.stats import Counter, Histogram
from .flowcache import FlowCache, FlowRecipe
from .tables import TableRegistry


class Direction(Enum):
    """Which way a packet is traversing the module."""

    EDGE_TO_LINE = "edge->line"  # host/switch toward the fiber
    LINE_TO_EDGE = "line->edge"  # fiber toward the host/switch

    # Members are singletons; identity hashing skips the Python-level
    # Enum.__hash__ on every per-frame dict/key operation.
    __hash__ = object.__hash__

    @property
    def reverse(self) -> "Direction":
        return (
            Direction.LINE_TO_EDGE
            if self is Direction.EDGE_TO_LINE
            else Direction.EDGE_TO_LINE
        )


class Verdict(Enum):
    """Outcome of processing one packet."""

    PASS = "pass"  # forward toward the packet's natural egress
    DROP = "drop"
    REFLECT = "reflect"  # send back out the ingress interface
    TO_CPU = "to_cpu"  # hand to the embedded control plane

    __hash__ = object.__hash__


class PPEContext:
    """Per-packet context handed to applications.

    ``emit`` lets an application originate additional packets (telemetry
    reports, mirrored frames); emitted packets leave through the interface
    for the given direction after the current packet completes.
    """

    __slots__ = ("time_ns", "direction", "device_id", "queue_depth", "_emitted")

    def __init__(
        self,
        time_ns: int,
        direction: Direction,
        device_id: int = 0,
        queue_depth: int = 0,
    ) -> None:
        self.time_ns = time_ns
        self.direction = direction
        self.device_id = device_id
        self.queue_depth = queue_depth
        self._emitted: list[tuple[Packet, Direction]] = []

    def emit(self, packet: Packet, direction: Direction) -> None:
        """Queue an application-originated packet for transmission."""
        self._emitted.append((packet, direction))

    @property
    def emitted(self) -> list[tuple[Packet, Direction]]:
        return self._emitted


class PPEApplication(ABC):
    """A packet function deployable into a FlexSFP PPE.

    Subclasses populate ``self.tables`` with their match-action state (the
    control plane reads/writes through that registry) and keep functional
    statistics in ``self.counters``.

    Applications whose verdict is a pure function of a per-flow key may
    additionally implement :meth:`flow_key` and :meth:`decide` to opt into
    the flow-cache fast path; the default implementations opt out.
    """

    name: str = "app"

    def __init__(self) -> None:
        self.tables = TableRegistry()
        self.counters: dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Get-or-create a named statistics counter."""
        if name not in self.counters:
            self.counters[name] = Counter(f"{self.name}.{name}")
        return self.counters[name]

    @abstractmethod
    def pipeline_spec(self) -> "PipelineSpec":
        """The hardware pipeline this application synthesizes to."""

    @abstractmethod
    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        """Process one packet (mutating it in place); return a verdict."""

    # ------------------------------------------------------------------
    # Fast-path hooks (flow cache)
    # ------------------------------------------------------------------
    def flow_key(self, packet: Packet) -> Hashable | None:
        """Cache key identifying this packet's flow, or None to opt out.

        Return a key only when :meth:`decide` can express the packet's
        entire processing as a replayable :class:`FlowRecipe` — i.e. the
        verdict and mutations depend on nothing but the key and table
        state.  The engine adds the traversal direction to the key, so a
        key need not encode it.
        """
        return None

    def decide(self, packet: Packet, ctx: PPEContext) -> FlowRecipe | None:
        """The packet's processing as a replayable recipe (slow path).

        Only called for packets whose :meth:`flow_key` returned a key.
        Returning None falls back to :meth:`process` uncached.  The
        recipe, when returned, is applied to the packet in place of
        ``process`` and cached for subsequent packets of the flow.
        """
        return None

    def burst_plan(self, template: Packet, direction: Direction):
        """Sequential burst replay for meter-mode fusion, or None to deopt.

        Only consulted when the effect analysis classifies the pipeline as
        ``meter``-fusible (:mod:`repro.analysis.effects`).  The hook
        receives a burst's template frame and traversal direction and
        returns a callable ``plan(times_ns, size) -> [(Verdict, count)]``
        replaying the per-frame meter arithmetic in arrival order —
        bit-identical state updates and counter bumps, collapsed into
        contiguous same-verdict runs — or None to deopt the burst.  A plan
        must restrict itself to PASS/DROP verdicts and may not read the
        queue depth or emit packets (the analysis proves the pipeline has
        no effects beyond meter state, counters, and the verdict).
        """
        return None

    def config(self) -> dict:
        """Serializable constructor parameters (stored in bitstreams)."""
        return {}

    def counters_snapshot(self) -> dict[str, dict[str, int]]:
        return {name: c.snapshot() for name, c in self.counters.items()}


DoneCallback = Callable[[Packet, Verdict, list[tuple[Packet, Direction]]], None]

# Compiled-burst delivery: one call per fused slice with the mutated
# template copy, the shared verdict and wire size, and the struct-of-arrays
# vector of per-frame virtual deliver times.
BurstDoneCallback = Callable[[Packet, Verdict, int, "np.ndarray"], None]

# FIFO entry:
# (packet, wire size, direction, done callback, enqueue ns, arrival seconds).
_QueuedFrame = "tuple[Packet, int, Direction, DoneCallback, int, float]"


class _PendingBurst:
    """Struct-of-arrays record of one admitted compiled burst.

    ``enqueue_ns``/``finish`` are per-admitted-frame arrays; ``pos`` marks
    how far the drain has consumed the burst (finish times are
    non-decreasing, so the due set is always a prefix).
    """

    __slots__ = (
        "template",
        "size",
        "direction",
        "key",
        "meter",
        "done_burst",
        "done_frame",
        "enqueue_ns",
        "finish",
        "pos",
    )

    def __init__(
        self,
        template: Packet,
        size: int,
        direction: Direction,
        key: Hashable,
        done_burst: BurstDoneCallback,
        done_frame: DoneCallback,
        enqueue_ns: "np.ndarray",
        finish: "np.ndarray",
        meter: bool = False,
    ) -> None:
        self.template = template
        self.size = size
        self.direction = direction
        self.key = key
        self.meter = meter
        self.done_burst = done_burst
        self.done_frame = done_frame
        self.enqueue_ns = enqueue_ns
        self.finish = finish
        self.pos = 0


class PacketProcessingEngine:
    """Queueing server that executes an application at synthesized speed.

    Service time per frame is ``TimingSpec.frame_service_time`` —  the
    number of datapath beats the frame occupies.  Packets arriving while
    the engine is busy wait in a bounded ingress FIFO; overflow is counted
    and dropped, which is exactly how the Two-Way-Core shell falls off
    line rate when it is not clocked up (Figure 1 discussion).

    ``batch_size`` > 1 enables batched execution and ``flow_cache`` the
    fast path (see the module docstring for both contracts).
    """

    def __init__(
        self,
        sim: Simulator,
        app: PPEApplication,
        timing: TimingSpec,
        queue_bytes: int = 32 * 1024,
        device_id: int = 0,
        batch_size: int = 1,
        flow_cache: FlowCache | None = None,
        program: "CompiledProgram | None" = None,
    ) -> None:
        if batch_size < 1:
            raise SimulationError(f"batch size must be >= 1, got {batch_size}")
        self.sim = sim
        self.app = app
        self.timing = timing
        self.queue_bytes = queue_bytes
        self.device_id = device_id
        self.batch_size = batch_size
        self.flow_cache = flow_cache
        # Compiled tier: the verified executor program gating burst fusion
        # (see repro.hls.executor), struct-of-arrays bursts pending
        # processing, the armed drain event, and fusion statistics.
        self.program = program
        self._bursts: deque = deque()
        self._burst_event = None
        self._latency_bounds: "np.ndarray | None" = None
        self.compiled_bursts = 0
        self.compiled_frames = 0
        self.compiled_deopts = 0
        self._fifo: deque = deque()
        self._fifo_bytes = 0
        self._busy = False
        self._timeline = ServiceTimeline()
        # Batched mode: frames reserve their service slot at submit time;
        # processing is grouped into one event per up-to-batch_size frames.
        # _arrivals mirrors (enqueue_ns, size) of reserved-but-unprocessed
        # frames for exact queue-depth reconstruction.
        self._group: list = []
        self._group_event = None
        self._arrivals: deque = deque()
        self._arrivals_bytes = 0
        # Per-size service-time memo: frame_service_time is a pure function
        # of the frame length for a fixed TimingSpec.
        self._service_times: dict[int, float] = {}
        # While True (inside a batched-delivery flush bracketed by
        # flush_begin/flush_end) submits skip per-frame group-event
        # re-arming; flush_end arms one event for the open group.
        self._defer_commit = False
        # Reentrancy guard: an application that writes its own tables
        # *during* processing (telemetry, policers) fires the pre-mutation
        # drain hook from inside _process_due; the nested call must no-op.
        self._processing = False
        if batch_size > 1:
            # Control-plane writes land between packets.  Frames whose
            # virtual service already finished but that still sit in a
            # pending batch must be decided against the pre-write table
            # state, exactly as the event-per-frame engine would have.
            app.tables.on_before_mutate = self._process_due
        # Pipeline fill latency is fixed per deployed app; computing it per
        # packet would rebuild the whole PipelineSpec each time.
        self.pipeline_latency_s = (
            app.pipeline_spec().pipeline_depth / timing.clock_hz
        )
        self.processed = Counter("ppe.processed")
        self.overload_drops = Counter("ppe.overload_drops")
        self.fastpath_hits = Counter("ppe.fastpath_hits")
        self.verdict_counts: dict[Verdict, int] = {v: 0 for v in Verdict}
        self.latency_ns = Histogram.exponential(start=50.0, factor=2.0, count=16)
        # Optional packet tracer (duck-typed repro.obs.trace.Tracer — core
        # never imports obs).  None costs one attribute load per frame;
        # traced frames take the cold instrumented twin of _apply.
        self.tracer = None

    def submit(
        self,
        packet: Packet,
        direction: Direction,
        done: DoneCallback,
        at_s: float | None = None,
        size: int | None = None,
    ) -> bool:
        """Offer a packet to the engine; False when the ingress FIFO drops.

        ``at_s`` is the frame's (virtual) arrival time for batch-delivered
        ingress — it may lead ``sim.now`` by up to one delivery batch and
        must be non-decreasing across calls; omitted it defaults to now.
        Only batched engines (``batch_size > 1``) may be handed future
        arrivals: their reservations use per-frame arrival times.
        ``size`` is an optional precomputed ``packet.wire_len``.
        """
        at = self.sim.now if at_s is None else at_s
        if size is None:
            size = packet.wire_len
        if self.batch_size > 1:
            return self._submit_batched(packet, size, direction, done, at)
        if self._fifo_bytes + size > self.queue_bytes:
            self.overload_drops.count(size)
            return False
        enqueue_ns = int(at * 1e9)
        # Stamp per-engine (overwrite, not setdefault): a packet traversing
        # two modules must not keep the first engine's timestamp, or the
        # second engine's latency histogram measures both residencies.
        packet.meta["ppe_enqueue_ns"] = enqueue_ns
        self._fifo.append((packet, size, direction, done, enqueue_ns, at))
        self._fifo_bytes += size
        if not self._busy:
            self._start_next()
        return True

    def _submit_batched(
        self,
        packet: Packet,
        size: int,
        direction: Direction,
        done: DoneCallback,
        at: float,
    ) -> bool:
        """Batched admission: reserve the service slot at the arrival time.

        Reserving immediately (``start = max(arrival, free_at)`` — the
        float sequence of the sequential schedule) keeps the occupancy
        check exactly the event-per-frame "arrived but not yet started"
        set even when batch-delivered ingress submits several frames per
        real event.  Processing is deferred to a group event re-armed at
        the newest frame's finish and closed at ``batch_size`` frames.
        """
        if self._bursts:
            # A per-frame submit while compiled bursts are pending: collapse
            # the burst lane into the per-frame lane first so one
            # finish-ordered queue drains both.
            self._materialize_pending_bursts()
        # Inlined ServiceTimeline.drain/reserve (hot path): identical float
        # operation order, so reservations are bit-exact vs the helpers.
        timeline = self._timeline
        reservations = timeline._pending
        pending_bytes = timeline.pending_bytes
        while reservations and reservations[0][0] <= at:
            pending_bytes -= reservations.popleft()[1]
        if pending_bytes + size > self.queue_bytes:
            timeline.pending_bytes = pending_bytes
            self.overload_drops.count(size)
            return False
        enqueue_ns = int(at * 1e9)
        packet.meta["ppe_enqueue_ns"] = enqueue_ns
        service = self._service_times.get(size)
        if service is None:
            service = self._service_times[size] = self.timing.frame_service_time(
                size
            )
        free_at = timeline.free_at
        start = at if at > free_at else free_at
        finish = start + service
        timeline.free_at = finish
        reservations.append((start, size))
        timeline.pending_bytes = pending_bytes + size
        frame = (packet, size, direction, done, enqueue_ns, finish)
        # The arrivals mirror shares the frame tuples (enqueue at [4],
        # size at [1]) so admission costs one allocation, not two.
        self._arrivals.append(frame)
        self._arrivals_bytes += size
        group = self._group
        group.append(frame)
        event = self._group_event
        if event is not None:
            event.cancel()
            self._group_event = None
        if len(group) >= self.batch_size:
            self._group = []
            now = self.sim.now
            self.sim.schedule_at(
                finish if finish > now else now, self._process_due
            )
        elif not self._defer_commit:
            now = self.sim.now
            self._group_event = self.sim.schedule_at(
                finish if finish > now else now, self._process_due_event
            )
        return True

    def flush_begin(self) -> None:
        """Enter a batched-delivery flush: defer group-event arming."""
        self._defer_commit = True

    def flush_end(self) -> None:
        """Leave a flush: arm one group event for the open remainder."""
        self._defer_commit = False
        group = self._group
        if group and self._group_event is None:
            finish = group[-1][5]
            now = self.sim.now
            self._group_event = self.sim.schedule_at(
                finish if finish > now else now, self._process_due_event
            )

    def _start_next(self) -> None:
        if not self._fifo:
            self._busy = False
            return
        self._busy = True
        packet, size, direction, done, enqueue_ns, _at = self._fifo.popleft()
        self._fifo_bytes -= size
        service = self.timing.frame_service_time(size)
        self.sim.schedule(
            service, self._finish, packet, size, direction, done, enqueue_ns
        )

    # ------------------------------------------------------------------
    # Event-per-frame execution
    # ------------------------------------------------------------------
    def _finish(
        self,
        packet: Packet,
        size: int,
        direction: Direction,
        done: DoneCallback,
        enqueue_ns: int,
    ) -> None:
        # The frame has streamed through; apply the functional behaviour,
        # then deliver after the pipeline fill latency.
        ctx = PPEContext(
            time_ns=int(self.sim.now * 1e9),
            direction=direction,
            device_id=self.device_id,
            queue_depth=self._fifo_bytes,
        )
        verdict = self._apply(packet, size, direction, ctx)
        self.sim.schedule(
            self.pipeline_latency_s,
            self._deliver,
            packet,
            verdict,
            ctx.emitted,
            done,
            enqueue_ns,
        )
        self._start_next()

    def _deliver(
        self,
        packet: Packet,
        verdict: Verdict,
        emitted: list[tuple[Packet, Direction]],
        done: DoneCallback,
        enqueue_ns: int,
    ) -> None:
        self.latency_ns.add(int(self.sim.now * 1e9) - enqueue_ns)
        done(packet, verdict, emitted)

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------
    def _process_due_event(self) -> None:
        self._group_event = None
        self._process_due()

    def _process_due(self) -> None:
        """Process every reserved frame whose virtual service has finished.

        Finish times are strictly increasing across submits (``start =
        max(arrival, free_at)``, service > 0), so the due set is always a
        prefix of the arrival queue — batch events, open-group events and
        the pre-mutation table hook all drain through this one method.
        The hook call is what keeps control-plane writes atomic *between
        packets*: a write landing mid-batch first forces every frame whose
        virtual decision time already passed to be decided against the
        pre-write table state, exactly as the event-per-frame engine does.
        An event that fires after an earlier drain already consumed its
        frames is a no-op.
        """
        if self._processing:
            # An application writing its own tables mid-processing fired
            # the drain hook reentrantly; the outer loop is the drain.
            return
        if self._bursts:
            # Compiled bursts and per-frame arrivals never coexist (either
            # side materializes the other on contact), so the burst drain
            # is a complete substitute here.
            self._process_due_bursts()
            return
        arrivals = self._arrivals
        now = self.sim.now
        if not arrivals or arrivals[0][5] > now:
            return
        self._processing = True
        try:
            self._timeline.drain(now)
            # Reconstruct each frame's queue depth as the event-per-frame
            # execution would have seen it at that frame's finish time:
            # every arrival after it that is enqueued no later than the
            # finish.  Arrivals are submit-ordered (non-decreasing enqueue
            # time), so the "not yet arrived" entries — reservations
            # delivered early by a batched flush — form a contiguous tail
            # of the deque at most one flush long; only that tail is
            # walked, keeping the reconstruction O(batch) rather than
            # O(queue depth).
            first_finish_ns = int(arrivals[0][5] * 1e9)
            future: list = []
            future_bytes = 0
            for entry in reversed(arrivals):
                if entry[4] <= first_finish_ns:
                    break
                future.append(entry)
                future_bytes += entry[1]
            remaining_bytes = self._arrivals_bytes
            pipeline_latency_s = self.pipeline_latency_s
            apply = self._apply_batched
            deliveries: list[
                tuple[Packet, Verdict, list, DoneCallback, int, float]
            ] = []
            append = deliveries.append
            while arrivals and arrivals[0][5] <= now:
                packet, size, direction, done, enqueue_ns, finish = (
                    arrivals.popleft()
                )
                remaining_bytes -= size
                finish_ns = int(finish * 1e9)
                # Drop matured entries — including this frame's own, and
                # those of already-processed frames — so ``future`` holds
                # exactly the arrivals still in flight at this finish.
                while future and future[-1][4] <= finish_ns:
                    future_bytes -= future[-1][1]
                    future.pop()
                verdict, emitted = apply(
                    packet, size, direction, finish_ns,
                    remaining_bytes - future_bytes,
                )
                append(
                    (packet, verdict, emitted, done, enqueue_ns,
                     finish + pipeline_latency_s)
                )
            self._arrivals_bytes = remaining_bytes
            group = self._group
            if group and group[0][5] <= now:
                # The drain ate into the open group (pre-mutation hook or
                # a late event); keep only the still-unprocessed suffix.
                self._group = [frame for frame in group if frame[5] > now]
            self.sim.schedule(
                self.pipeline_latency_s, self._deliver_batch, deliveries
            )
        finally:
            self._processing = False

    def _deliver_batch(
        self, deliveries: list[tuple[Packet, Verdict, list, DoneCallback, int, float]]
    ) -> None:
        # Done callbacks run at the batch tail but carry each frame's
        # virtual deliver time (``finish + pipeline_latency`` — the exact
        # float the event-per-frame schedule computes), so a batch-aware
        # consumer can keep downstream timestamps identical via
        # ``Port.send_at``.
        latency_add = self.latency_ns.add
        for packet, verdict, emitted, done, enqueue_ns, deliver_s in deliveries:
            latency_add(int(deliver_s * 1e9) - enqueue_ns)
            packet.meta["ppe_deliver_s"] = deliver_s
            done(packet, verdict, emitted)

    # ------------------------------------------------------------------
    # Compiled burst execution
    # ------------------------------------------------------------------
    def submit_burst(
        self,
        template: Packet,
        size: int,
        direction: Direction,
        times: "np.ndarray",
        done_burst: BurstDoneCallback,
        done_frame: DoneCallback,
    ) -> int:
        """Offer a same-flow burst as one template plus arrival times.

        The compiled engine's struct-of-arrays ingress: ``times`` is a
        non-decreasing float64 array of virtual arrival seconds, one per
        frame, every frame sharing ``template``'s headers and ``size``.
        Admission replays the batched per-frame reservation arithmetic,
        so tail drops and service times are bit-identical to submitting
        each frame individually.  Returns the number of admitted frames.

        Bursts the fused contract cannot express deopt at submit: with a
        tracer attached, no fusible program, a flow the application opts
        out of, or per-frame arrivals already pending, every frame
        materializes through the per-frame lane with ``done_frame`` as
        its completion callback.
        """
        key = None
        meter = False
        program = self.program
        if (
            program is not None
            and program.fusible
            and self.tracer is None
            and self.batch_size > 1
            and not self._arrivals
        ):
            if program.mode == "meter":
                # Sequential meter lane: no flow key — the application
                # replays the slice's arrival times itself (burst_plan).
                meter = True
            elif self.flow_cache is not None:
                key = self.app.flow_key(template)
        if key is None and not meter:
            values = times.tolist() if hasattr(times, "tolist") else list(times)
            self.compiled_deopts += len(values)
            if self.batch_size <= 1:
                admitted = 0
                for at in values:
                    if self.submit(
                        template.copy(), direction, done_frame, at_s=at, size=size
                    ):
                        admitted += 1
                return admitted
            defer = self._defer_commit
            self._defer_commit = True
            admitted = 0
            submit = self._submit_batched
            for at in values:
                if submit(template.copy(), size, direction, done_frame, at):
                    admitted += 1
            if not defer:
                self._defer_commit = False
                self.flush_end()
            return admitted
        times = np.ascontiguousarray(times, dtype=np.float64)
        admitted_at, finishes = self._admit_burst(times, size)
        if len(finishes) == 0:
            return 0
        burst = _PendingBurst(
            template,
            size,
            direction,
            key,
            done_burst,
            done_frame,
            (admitted_at * 1e9).astype(np.int64),
            finishes,
            meter=meter,
        )
        self._bursts.append(burst)
        self.compiled_bursts += 1
        event = self._burst_event
        if event is not None:
            # One armed drain event at the newest burst's final finish
            # covers every pending burst (finish order is global).
            event.cancel()
        last = float(finishes[-1])
        now = self.sim.now
        self._burst_event = self.sim.schedule_at(
            last if last > now else now, self._burst_event_fired
        )
        return len(finishes)

    def _admit_burst(
        self, times: "np.ndarray", size: int
    ) -> tuple["np.ndarray", "np.ndarray"]:
        """Reserve service slots for a burst; returns admitted (at, finish).

        Exactly :meth:`_submit_batched`'s admission — drain, tail-drop
        check, ``start = max(arrival, free_at)`` — replayed per frame.
        Two vectorised regimes cover the common cases bit-exactly: a
        burst that fits the queue outright chains through
        :func:`~repro.sim.burst.chain_reservations`, and a burst arriving
        entirely while the server is busy (the oversubscribed steady
        state) resolves its tail drops with the
        :func:`~repro.sim.burst.bounded_admissions` scan.  Anything else
        falls back to a Python loop replaying the exact per-frame
        sequence.
        """
        timeline = self._timeline
        reservations = timeline._pending
        service = self._service_times.get(size)
        if service is None:
            service = self._service_times[size] = self.timing.frame_service_time(
                size
            )
        n = len(times)
        first = float(times[0])
        pending_bytes = timeline.pending_bytes
        # Amortized drain to the burst head: the state the per-frame loop
        # would see at its first arrival (each reservation pops once ever).
        while reservations and reservations[0][0] <= first:
            pending_bytes -= reservations.popleft()[1]
        timeline.pending_bytes = pending_bytes
        if pending_bytes + n * size <= self.queue_bytes:
            # Occupancy only shrinks as reservations mature, so a burst
            # that fits on top of the undrained occupancy can never drop;
            # matured entries are released by the next drain that needs
            # them, leaving pending_bytes consistent with the deque.
            chained = chain_reservations(times, service, timeline.free_at)
            if chained is not None:
                starts, finishes = chained
                timeline.free_at = float(finishes[-1])
                for start in starts.tolist():
                    reservations.append((start, size))
                timeline.pending_bytes += n * size
                return times, finishes
        free_at = timeline.free_at
        last = float(times[-1])
        if last < free_at:
            # Saturated regime: every arrival lands while the server is
            # busy, so every admitted start continues the free_at chain
            # and no reservation made by this burst matures within it.
            # Matured older reservations form a sorted prefix; per-frame
            # headroom is then a non-decreasing cap sequence and the
            # tail-drop scan has a closed form.
            matured_starts: list[float] = []
            matured_sizes: list[int] = []
            while reservations and reservations[0][0] <= last:
                entry = reservations.popleft()
                matured_starts.append(entry[0])
                matured_sizes.append(entry[1])
            if matured_starts:
                released = np.concatenate(
                    ([0], np.add.accumulate(np.asarray(matured_sizes)))
                )
                freed = released[
                    np.searchsorted(np.asarray(matured_starts), times, side="right")
                ]
                total_released = int(released[-1])
            else:
                freed = np.zeros(n, dtype=np.int64)
                total_released = 0
            caps = (self.queue_bytes - size - pending_bytes + freed) // size
            cumulative = bounded_admissions(caps)
            admitted_count = int(cumulative[-1])
            drops = n - admitted_count
            if drops:
                overload = self.overload_drops
                overload.packets += drops
                overload.bytes += drops * size
            timeline.pending_bytes = (
                pending_bytes - total_released + admitted_count * size
            )
            if admitted_count == 0:
                return times[:0], times[:0]
            chain = np.empty(admitted_count + 1)
            chain[0] = free_at
            chain[1:] = service
            chain = np.add.accumulate(chain)
            for start in chain[:admitted_count].tolist():
                reservations.append((start, size))
            timeline.free_at = float(chain[admitted_count])
            flags = np.diff(cumulative, prepend=0) == 1
            return times[flags], chain[1:]
        free_at = timeline.free_at
        queue_bytes = self.queue_bytes
        admitted: list[float] = []
        finish_times: list[float] = []
        admit_at = admitted.append
        admit_finish = finish_times.append
        drops = 0
        for at in times.tolist():
            while reservations and reservations[0][0] <= at:
                pending_bytes -= reservations.popleft()[1]
            if pending_bytes + size > queue_bytes:
                drops += 1
                continue
            start = at if at > free_at else free_at
            finish = start + service
            free_at = finish
            reservations.append((start, size))
            pending_bytes += size
            admit_at(at)
            admit_finish(finish)
        timeline.free_at = free_at
        timeline.pending_bytes = pending_bytes
        if drops:
            overload = self.overload_drops
            overload.packets += drops
            overload.bytes += drops * size
        return np.asarray(admitted), np.asarray(finish_times)

    def _burst_event_fired(self) -> None:
        self._burst_event = None
        self._process_due()

    def _process_due_bursts(self) -> None:
        """Drain every burst frame whose virtual service has finished.

        The burst analogue of :meth:`_process_due` — reached through the
        same entry point, so batch events and the pre-mutation table hook
        both land here.  Due frames form a prefix of each pending burst,
        and each due slice collapses into one fused recipe application.
        """
        self._processing = True
        try:
            now = self.sim.now
            self._timeline.drain(now)
            bursts = self._bursts
            while bursts:
                burst = bursts[0]
                finish = burst.finish
                pos = burst.pos
                end = int(np.searchsorted(finish, now, side="right"))
                if end <= pos:
                    break
                if burst.meter:
                    self._fuse_meter_slice(burst, pos, end)
                else:
                    self._fuse_slice(burst, pos, end)
                if end < len(finish):
                    burst.pos = end
                    break
                bursts.popleft()
        finally:
            self._processing = False

    def _fuse_slice(self, burst: _PendingBurst, pos: int, end: int) -> None:
        """Process one due slice with a single fused recipe application."""
        count = end - pos
        app = self.app
        direction = burst.direction
        size = burst.size
        generation = app.tables.generation()
        recipe = self.flow_cache.lookup((direction, burst.key), generation)
        decided = 0
        if recipe is None:
            # Slow-path probe: one decide() stands for the whole slice.
            # The effect analysis proved decide is a pure read of
            # (packet, direction, tables), so the slice head's context is
            # representative of every frame.
            ctx = PPEContext(
                int(burst.finish[pos] * 1e9),
                direction,
                self.device_id,
                (len(burst.finish) - pos - 1) * size,
            )
            recipe = app.decide(burst.template, ctx)
            if recipe is None or ctx.emitted:
                self._materialize_slice(burst, pos, end)
                return
            self.flow_cache.insert((direction, burst.key), recipe, generation)
            decided = 1
        verdict = recipe.verdict
        if verdict is not Verdict.PASS and verdict is not Verdict.DROP:
            # REFLECT / TO_CPU need per-frame downstream handling.
            self._materialize_slice(burst, pos, end)
            return
        packet = burst.template.copy()
        applied = recipe.apply_burst(packet, app, size, count)
        # Hits are counted at arrival size; ``processed`` and the
        # delivered size reflect the recipe's structural ops (e.g. a VLAN
        # push grows every frame by 4 bytes), matching the slow path's
        # post-process wire length.
        effective = size + recipe.size_delta
        hits = self.fastpath_hits
        hits.packets += count - decided
        hits.bytes += (count - decided) * size
        processed = self.processed
        processed.packets += count
        processed.bytes += count * effective
        self.verdict_counts[applied] += count
        self.compiled_frames += count
        deliver_s = burst.finish[pos:end] + self.pipeline_latency_s
        self.sim.schedule(
            self.pipeline_latency_s,
            self._deliver_burst,
            burst.done_burst,
            packet,
            applied,
            effective,
            deliver_s,
            burst.enqueue_ns[pos:end],
        )

    def _fuse_meter_slice(self, burst: _PendingBurst, pos: int, end: int) -> None:
        """Process one due slice through the sequential meter lane.

        No recipe and no flow cache: the application's
        :meth:`~PPEApplication.burst_plan` replays its time-varying state
        (token buckets) over the slice's arrival times in order —
        bit-identical arithmetic to per-frame ``process`` calls — and
        returns contiguous verdict runs.  Each run delivers as one fused
        burst; nothing is cached, so the next slice replans against the
        then-current meter state.
        """
        app = self.app
        size = burst.size
        plan = app.burst_plan(burst.template, burst.direction)
        if plan is None:
            self._materialize_slice(burst, pos, end)
            return
        count = end - pos
        times_ns = (burst.finish[pos:end] * 1e9).astype(np.int64).tolist()
        runs = plan(times_ns, size)
        if sum(n for _verdict, n in runs) != count:
            raise SimulationError(
                f"application {app.name!r} burst plan covered "
                f"{sum(n for _v, n in runs)} of {count} frames"
            )
        processed = self.processed
        processed.packets += count
        processed.bytes += count * size
        self.compiled_frames += count
        pipeline_latency_s = self.pipeline_latency_s
        offset = pos
        for verdict, n in runs:
            seg_finish = burst.finish[offset : offset + n]
            self.verdict_counts[verdict] += n
            self.sim.schedule(
                pipeline_latency_s,
                self._deliver_burst,
                burst.done_burst,
                burst.template.copy(),
                verdict,
                size,
                seg_finish + pipeline_latency_s,
                burst.enqueue_ns[offset : offset + n],
            )
            offset += n

    def _materialize_slice(self, burst: _PendingBurst, pos: int, end: int) -> None:
        """Deopt a due slice through the exact per-frame machinery."""
        template = burst.template
        size = burst.size
        direction = burst.direction
        done = burst.done_frame
        finish = burst.finish
        enqueue = burst.enqueue_ns
        total = len(finish)
        apply = self._apply_batched
        pipeline_latency_s = self.pipeline_latency_s
        deliveries: list = []
        self.compiled_deopts += end - pos
        for index in range(pos, end):
            packet = template.copy()
            enqueue_ns = int(enqueue[index])
            packet.meta["ppe_enqueue_ns"] = enqueue_ns
            finish_s = float(finish[index])
            # Queue depth approximates to this burst's unprocessed tail;
            # the fused contract keeps applications from reading it.
            verdict, emitted = apply(
                packet,
                size,
                direction,
                int(finish_s * 1e9),
                (total - index - 1) * size,
            )
            deliveries.append(
                (packet, verdict, emitted, done, enqueue_ns,
                 finish_s + pipeline_latency_s)
            )
        self.sim.schedule(pipeline_latency_s, self._deliver_batch, deliveries)

    def _materialize_pending_bursts(self) -> None:
        """Collapse the burst lane into the per-frame arrival queue.

        Called when per-frame work interleaves with pending bursts (a
        probe, an emitted frame, a traced packet): every unprocessed
        burst frame becomes a regular reserved arrival so one
        finish-ordered drain handles both.  Reservation state is
        untouched — burst admission already reserved per frame.
        """
        bursts = self._bursts
        self._bursts = deque()
        event = self._burst_event
        if event is not None:
            event.cancel()
            self._burst_event = None
        event = self._group_event
        if event is not None:
            event.cancel()
            self._group_event = None
        arrivals = self._arrivals
        group = self._group
        added = 0
        for burst in bursts:
            template = burst.template
            size = burst.size
            direction = burst.direction
            done = burst.done_frame
            finish = burst.finish.tolist()
            enqueue = burst.enqueue_ns.tolist()
            for index in range(burst.pos, len(finish)):
                packet = template.copy()
                packet.meta["ppe_enqueue_ns"] = enqueue[index]
                frame = (
                    packet, size, direction, done, enqueue[index], finish[index]
                )
                arrivals.append(frame)
                self._arrivals_bytes += size
                group.append(frame)
                added += 1
        self.compiled_deopts += added
        if group and not self._defer_commit:
            finish_s = group[-1][5]
            now = self.sim.now
            self._group_event = self.sim.schedule_at(
                finish_s if finish_s > now else now, self._process_due_event
            )

    def _deliver_burst(
        self,
        done_burst: BurstDoneCallback,
        packet: Packet,
        verdict: Verdict,
        size: int,
        deliver_s: "np.ndarray",
        enqueue_ns: "np.ndarray",
    ) -> None:
        # One histogram update per fused slice: searchsorted(side="right")
        # is bisect_right, so the bulk binning lands every latency in the
        # bucket the per-frame add() would have chosen, and the int64
        # cast truncates exactly like int().
        bounds = self._latency_bounds
        if bounds is None:
            bounds = self._latency_bounds = np.asarray(self.latency_ns.bounds)
        latencies = (deliver_s * 1e9).astype(np.int64) - enqueue_ns
        histogram = self.latency_ns
        counts = histogram.counts
        binned = np.bincount(
            np.searchsorted(bounds, latencies, side="right"),
            minlength=len(counts),
        )
        for index, bucket in enumerate(binned.tolist()):
            if bucket:
                counts[index] += bucket
        histogram.total += len(latencies)
        done_burst(packet, verdict, size, deliver_s)

    # ------------------------------------------------------------------
    # Functional application (fast path + slow path)
    # ------------------------------------------------------------------
    def _apply(
        self, packet: Packet, size: int, direction: Direction, ctx: PPEContext
    ) -> Verdict:
        """Run the application on one frame, via the flow cache if possible."""
        tracer = self.tracer
        if tracer is not None and tracer.is_traced(packet):
            verdict, _emitted = self._apply_traced(packet, size, direction, ctx)
            return verdict
        app = self.app
        cache = self.flow_cache
        verdict: Verdict | None = None
        if cache is not None:
            key = app.flow_key(packet)
            if key is not None:
                generation = app.tables.generation()
                recipe = cache.lookup((direction, key), generation)
                if recipe is not None:
                    self.fastpath_hits.count(size)
                    verdict = recipe.apply(packet, app)
                else:
                    recipe = app.decide(packet, ctx)
                    if recipe is not None:
                        cache.insert((direction, key), recipe, generation)
                        verdict = recipe.apply(packet, app)
        if verdict is None:
            verdict = app.process(packet, ctx)
            if not isinstance(verdict, Verdict):
                raise SimulationError(
                    f"application {app.name!r} returned {verdict!r} "
                    "instead of a Verdict"
                )
        # Counted post-process: applications may change the frame length.
        self.processed.count(packet.wire_len)
        self.verdict_counts[verdict] += 1
        return verdict

    def _apply_batched(
        self,
        packet: Packet,
        size: int,
        direction: Direction,
        finish_ns: int,
        queue_depth: int,
    ) -> tuple[Verdict, list[tuple[Packet, Direction]] | tuple]:
        """Batched-mode :meth:`_apply` with a lazily built context.

        Recipe replays never see the context (the application is not
        entered), so cache hits skip building it entirely and report an
        empty emitted tuple; a recipe's structural ops may change the
        frame length, so the ``processed`` counter sees the precomputed
        ``size`` plus the recipe's ``size_delta``.  Slow-path frames get
        the identical ``PPEContext`` the event-per-frame execution
        constructs.
        """
        tracer = self.tracer
        if tracer is not None and tracer.is_traced(packet):
            ctx = PPEContext(finish_ns, direction, self.device_id, queue_depth)
            return self._apply_traced(packet, size, direction, ctx)
        app = self.app
        cache = self.flow_cache
        if cache is not None:
            key = app.flow_key(packet)
            if key is not None:
                generation = app.tables.generation()
                recipe = cache.lookup((direction, key), generation)
                if recipe is not None:
                    hits = self.fastpath_hits
                    hits.packets += 1
                    hits.bytes += size
                    verdict = recipe.apply(packet, app, size)
                    processed = self.processed
                    processed.packets += 1
                    processed.bytes += size + recipe.size_delta
                    self.verdict_counts[verdict] += 1
                    return verdict, ()
                ctx = PPEContext(finish_ns, direction, self.device_id, queue_depth)
                recipe = app.decide(packet, ctx)
                if recipe is not None:
                    cache.insert((direction, key), recipe, generation)
                    verdict = recipe.apply(packet, app, size)
                    self.processed.count(size + recipe.size_delta)
                    self.verdict_counts[verdict] += 1
                    return verdict, ctx.emitted
                verdict = app.process(packet, ctx)
                if not isinstance(verdict, Verdict):
                    raise SimulationError(
                        f"application {app.name!r} returned {verdict!r} "
                        "instead of a Verdict"
                    )
                self.processed.count(packet.wire_len)
                self.verdict_counts[verdict] += 1
                return verdict, ctx.emitted
        ctx = PPEContext(finish_ns, direction, self.device_id, queue_depth)
        verdict = app.process(packet, ctx)
        if not isinstance(verdict, Verdict):
            raise SimulationError(
                f"application {app.name!r} returned {verdict!r} "
                "instead of a Verdict"
            )
        self.processed.count(packet.wire_len)
        self.verdict_counts[verdict] += 1
        return verdict, ctx.emitted

    def _apply_traced(
        self, packet: Packet, size: int, direction: Direction, ctx: PPEContext
    ) -> tuple[Verdict, list[tuple[Packet, Direction]]]:
        """Instrumented (cold) twin of the apply paths for traced packets.

        Functionally identical to :meth:`_apply` — the same counters, cache
        operations, and verdict checks in the same order — but additionally
        records a ``ppe`` span (queue residency, fast-path hit/miss) and an
        ``app`` span (verdict, header mutations) on the attached tracer.
        Stage names are string literals matching ``repro.obs.trace``
        constants: core never imports obs.
        """
        tracer = self.tracer
        before = tracer.snapshot_headers(packet)
        app = self.app
        cache = self.flow_cache
        fastpath: str | None = None
        verdict: Verdict | None = None
        if cache is not None:
            key = app.flow_key(packet)
            if key is not None:
                generation = app.tables.generation()
                recipe = cache.lookup((direction, key), generation)
                if recipe is not None:
                    fastpath = "hit"
                    self.fastpath_hits.count(size)
                    verdict = recipe.apply(packet, app, size)
                else:
                    fastpath = "miss"
                    recipe = app.decide(packet, ctx)
                    if recipe is not None:
                        cache.insert((direction, key), recipe, generation)
                        verdict = recipe.apply(packet, app, size)
        if verdict is None:
            verdict = app.process(packet, ctx)
            if not isinstance(verdict, Verdict):
                raise SimulationError(
                    f"application {app.name!r} returned {verdict!r} "
                    "instead of a Verdict"
                )
        self.processed.count(packet.wire_len)
        self.verdict_counts[verdict] += 1
        enqueue_ns = packet.meta.get("ppe_enqueue_ns", ctx.time_ns)
        ppe_detail: dict[str, object] = {
            "app": app.name,
            "queue_depth": ctx.queue_depth,
        }
        if fastpath is not None:
            ppe_detail["fastpath"] = fastpath
        tracer.record(
            packet,
            "ppe",
            f"ppe{self.device_id}",
            enqueue_ns,
            ctx.time_ns,
            direction,
            **ppe_detail,
        )
        app_detail: dict[str, object] = {"verdict": verdict.value}
        mutations = tracer.header_diff(before, packet)
        if mutations:
            app_detail["mutations"] = mutations
        tracer.record(
            packet,
            "app",
            app.name,
            ctx.time_ns,
            ctx.time_ns,
            direction,
            **app_detail,
        )
        return verdict, ctx.emitted

    def snapshot(self) -> dict[str, object]:
        """Structured counter snapshot (stable legacy dict layout)."""
        stats: dict[str, object] = {
            "processed": self.processed.snapshot(),
            "overload_drops": self.overload_drops.snapshot(),
            "verdicts": {v.value: n for v, n in self.verdict_counts.items()},
            "latency_ns": self.latency_ns.snapshot(),
        }
        if self.flow_cache is not None:
            stats["flow_cache"] = self.flow_cache.snapshot()
            stats["fastpath_hits"] = self.fastpath_hits.snapshot()
        if self.batch_size > 1:
            stats["batch_size"] = self.batch_size
        if self.program is not None:
            stats["compiled"] = {
                "bursts": self.compiled_bursts,
                "recipe_frames": self.compiled_frames,
                "deopt_frames": self.compiled_deopts,
                "compile_wall_s": self.program.compile_wall_s,
            }
        return stats

    def stats(self) -> dict[str, object]:
        """Deprecated alias for :meth:`snapshot`."""
        warn_deprecated(
            "PacketProcessingEngine.stats()",
            "PacketProcessingEngine.snapshot()",
        )
        return self.snapshot()

    def metric_values(self) -> dict[str, object]:
        """Flat :class:`~repro.obs.registry.MetricSource` view.

        Keys are prefixed with the application name, so registering an
        engine under ``module0.ppe`` yields names like
        ``module0.ppe.nat.overload_drops.packets``.
        """
        prefix = self.app.name
        values: dict[str, object] = {}
        for group, counter in (
            ("processed", self.processed),
            ("overload_drops", self.overload_drops),
        ):
            for key, value in counter.metric_values().items():
                values[f"{prefix}.{group}.{key}"] = value
        for verdict, count in self.verdict_counts.items():
            values[f"{prefix}.verdicts.{verdict.value}"] = count
        for key, value in self.latency_ns.metric_values().items():
            values[f"{prefix}.latency_ns.{key}"] = value
        if self.flow_cache is not None:
            for key, value in self.flow_cache.metric_values().items():
                values[f"{prefix}.flow_cache.{key}"] = value
            for key, value in self.fastpath_hits.metric_values().items():
                values[f"{prefix}.fastpath_hits.{key}"] = value
        if self.program is not None:
            # Wall-clock compile time stays snapshot-only: metric values
            # must be identical across regenerations for golden
            # byte-identity.
            values[f"{prefix}.compiled.bursts"] = self.compiled_bursts
            values[f"{prefix}.compiled.recipe_frames"] = self.compiled_frames
            values[f"{prefix}.compiled.deopt_frames"] = self.compiled_deopts
        values[f"{prefix}.batch_size"] = self.batch_size
        return values
