"""Flow cache: the PPE's exact-match fast path.

hXDP and PsPIN both get their speed from the same trick: once the general
pipeline has decided what to do with a flow, repeat packets of that flow
take a compiled fast path that skips the full program.  Here the fast path
is modeled as an LRU exact-match cache in front of ``app.process``: the
slow path produces a :class:`FlowRecipe` — the verdict plus a replayable
mutation/counter recipe — and subsequent packets of the same flow replay
the recipe without re-entering the application.

Correctness contract (enforced by ``tests/test_fastpath_differential.py``):
replaying a recipe is bit-identical to running the slow path.  Two
mechanisms keep that true:

* applications only return a recipe from :meth:`PPEApplication.decide`
  when their verdict is a pure function of the flow key (time-varying
  programs like the token-bucket policer never do);
* every cached entry is stamped with the application's table-generation
  counter, so any control-plane write invalidates affected entries — the
  conservative whole-cache flush a real double-buffered flow cache does on
  a rule push.

The cache itself costs hardware: sized entries land in LSRAM via
:func:`repro.fpga.estimator.flow_cache` and show up in the build report as
a ``flow_cache`` stage beside the pipeline.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from .._util import warn_deprecated
from ..errors import ConfigError
from ..packet import vlan_pop, vlan_push

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..packet import Packet
    from .ppe import PPEApplication, Verdict

DEFAULT_FLOW_CACHE_ENTRIES = 4096

# Packet properties a recipe may mutate (resolved via getattr(packet, kind)).
_MUTABLE_HEADERS = ("eth", "ipv4", "ipv6", "tcp", "udp")

# Structural ops a recipe may replay.  Unlike mutations these change the
# frame length: each entry maps the op name to its wire-length delta so a
# recipe knows its ``size_delta`` without touching a packet.
_RECIPE_OPS = {"vlan_push": 4, "vlan_pop": -4}


class FlowRecipe:
    """A replayable processing decision for one flow.

    ``mutations`` is a tuple of ``(header, field, value)`` triples where
    ``header`` names a :class:`~repro.packet.Packet` header property
    (``"ipv4"``, ``"eth"``, …); replay sets ``packet.<header>.<field> =
    value``.  ``counters`` names application counters bumped once per
    packet with the packet's wire length — so functional statistics stay
    identical whether a packet took the fast or the slow path.

    ``ops`` is a tuple of structural header operations replayed *before*
    the field mutations: ``("vlan_push", vid, pcp, service)`` or
    ``("vlan_pop",)``.  Ops change the frame length; the recipe's
    ``size_delta`` is the net wire-length change, and counter bumps use
    the post-op size so fast-path statistics match the slow path (which
    counts after its own pushes/pops).
    """

    __slots__ = (
        "verdict",
        "mutations",
        "counters",
        "ops",
        "size_delta",
        "_grouped",
        "_bound_app",
        "_bound_counters",
    )

    def __init__(
        self,
        verdict: "Verdict",
        mutations: tuple[tuple[str, str, int], ...] = (),
        counters: tuple[str, ...] = (),
        ops: tuple[tuple, ...] = (),
    ) -> None:
        for header, _field, _value in mutations:
            if header not in _MUTABLE_HEADERS:
                raise ConfigError(
                    f"recipe may only mutate {_MUTABLE_HEADERS}, got {header!r}"
                )
        for op in ops:
            if not op or op[0] not in _RECIPE_OPS:
                raise ConfigError(
                    f"recipe ops limited to {sorted(_RECIPE_OPS)}, got {op!r}"
                )
        self.verdict = verdict
        self.mutations = tuple(mutations)
        self.counters = tuple(counters)
        self.ops = tuple(ops)
        self.size_delta = sum(_RECIPE_OPS[op[0]] for op in self.ops)
        # Replay is the fast path's hottest call: group mutations by
        # header so each header property is resolved once per packet, and
        # lazily bind counter objects per application so replay skips the
        # name lookup.  Grouping preserves per-header field order; fields
        # of different headers are independent, so the final packet state
        # is unchanged.
        grouped: dict[str, list[tuple[str, int]]] = {}
        for header, field, value in self.mutations:
            grouped.setdefault(header, []).append((field, value))
        self._grouped = tuple(
            (header, tuple(fields)) for header, fields in grouped.items()
        )
        self._bound_app: "PPEApplication | None" = None
        self._bound_counters: tuple = ()

    def apply(
        self, packet: "Packet", app: "PPEApplication", size: int | None = None
    ) -> "Verdict":
        """Replay the decision onto ``packet``; returns the verdict.

        ``size`` is an optional precomputed *arrival* wire length for the
        counter bumps; field mutations never change the frame length and
        the recipe's own ``size_delta`` accounts for its structural ops,
        so the post-op size is ``size + size_delta`` without re-measuring
        the packet.
        """
        self._replay_ops(packet)
        for header_name, fields in self._grouped:
            header = getattr(packet, header_name)
            if header is None:  # pragma: no cover - key/recipe mismatch guard
                raise ConfigError(
                    f"recipe expects a {header_name} header the packet lacks"
                )
            for field, value in fields:
                setattr(header, field, value)
        if self.counters:
            if size is None:
                size = packet.wire_len
            else:
                size += self.size_delta
            if app is not self._bound_app:
                self._bound_app = app
                self._bound_counters = tuple(
                    app.counter(name) for name in self.counters
                )
            for counter in self._bound_counters:
                counter.packets += 1
                counter.bytes += size
        return self.verdict

    def apply_burst(
        self, packet: "Packet", app: "PPEApplication", size: int, count: int
    ) -> "Verdict":
        """Replay onto one template standing for ``count`` identical frames.

        The compiled engine's struct-of-arrays lane carries a burst of
        same-flow, same-size frames as a single template packet; the
        mutations land once on that template and the counter bumps are
        fused into one ``+= count`` — arithmetically identical to
        ``count`` calls of :meth:`apply` on per-frame copies.  ``size``
        is the per-frame *arrival* wire length; counters see the post-op
        size, as on the slow path.
        """
        self._replay_ops(packet)
        for header_name, fields in self._grouped:
            header = getattr(packet, header_name)
            if header is None:  # pragma: no cover - key/recipe mismatch guard
                raise ConfigError(
                    f"recipe expects a {header_name} header the packet lacks"
                )
            for field, value in fields:
                setattr(header, field, value)
        if self.counters:
            if app is not self._bound_app:
                self._bound_app = app
                self._bound_counters = tuple(
                    app.counter(name) for name in self.counters
                )
            for counter in self._bound_counters:
                counter.packets += count
                counter.bytes += count * (size + self.size_delta)
        return self.verdict

    def _replay_ops(self, packet: "Packet") -> None:
        for op in self.ops:
            if op[0] == "vlan_push":
                _, vid, pcp, service = op
                vlan_push(packet, vid, pcp=pcp, service=service)
            else:
                vlan_pop(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowRecipe({self.verdict}, mutations={self.mutations}, "
            f"counters={self.counters})"
        )


class FlowCache:
    """Bounded exact-match LRU cache of :class:`FlowRecipe` entries.

    Entries are stamped with the application's table generation at insert
    time; a lookup under a different generation is a miss that also drops
    the stale entry (control-plane writes invalidate the cache).
    """

    __slots__ = (
        "name",
        "capacity",
        "_entries",
        "hits",
        "misses",
        "evictions",
        "invalidations",
    )

    def __init__(self, capacity: int = DEFAULT_FLOW_CACHE_ENTRIES, name: str = "flow_cache") -> None:
        if capacity <= 0:
            raise ConfigError("flow cache needs positive capacity")
        self.name = name
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, tuple[int, FlowRecipe]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def lookup(self, key: Hashable, generation: int) -> FlowRecipe | None:
        """Cached recipe for ``key`` at the current table ``generation``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stamped, recipe = entry
        if stamped != generation:
            # A control-plane write happened since this flow was decided:
            # the cached verdict may be stale, re-run the slow path.
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return recipe

    def insert(self, key: Hashable, recipe: FlowRecipe, generation: int) -> None:
        """Install ``key -> recipe``; evicts the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = (generation, recipe)

    def invalidate(self) -> int:
        """Flush every entry (e.g. on application reload); returns count."""
        flushed = len(self._entries)
        self._entries.clear()
        self.invalidations += flushed
        return flushed

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, int | float]:
        """Structured counter snapshot (stable legacy dict layout)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 6),
        }

    def stats(self) -> dict[str, int | float]:
        """Deprecated alias for :meth:`snapshot`."""
        warn_deprecated("FlowCache.stats()", "FlowCache.snapshot()")
        return self.snapshot()

    def metric_values(self) -> dict[str, int | float]:
        """Flat :class:`~repro.obs.registry.MetricSource` view."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowCache({self.name}: {len(self)}/{self.capacity}, "
            f"{self.hits} hits / {self.misses} misses)"
        )
