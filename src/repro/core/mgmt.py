"""FlexSFP management protocol: authenticated control frames.

§4.1 requires a "basic network-accessible control interface"; §4.2 adds
over-the-network reprogramming where "the control plane authenticates
reconfiguration packets whose payload carries a new bitstream".  This
module defines that wire protocol: compact frames under the
local-experimental EtherType 0x88B5, authenticated with a truncated
HMAC-SHA256 and protected against replay by a strictly increasing sequence
number.

Frame layout (after the Ethernet header)::

    magic   2 B   b"FM"
    version 1 B
    opcode  1 B
    seq     4 B   big-endian, strictly increasing per session
    length  2 B   body length
    body    var   JSON object (control ops) or raw bytes (reconfig chunks)
    mac    16 B   HMAC-SHA256(key, header||body)[:16]
"""

from __future__ import annotations

import hashlib
import hmac
import json
import struct
from dataclasses import dataclass
from enum import IntEnum

from ..errors import ControlPlaneError
from ..packet import Ethernet, EtherType, Packet

MAGIC = b"FM"
VERSION = 1
MAC_LEN = 16
_HEADER = struct.Struct("!2sBBIH")
MAX_BODY = 1200  # fits in a standard 1500-byte MTU with margin


class MgmtOp(IntEnum):
    """Management opcodes."""

    HELLO = 1
    ACK = 2
    NAK = 3
    TABLE_ADD = 10
    TABLE_DEL = 11
    TABLE_CLEAR = 12
    TABLE_STATS = 13
    COUNTER_READ = 14
    RECONFIG_BEGIN = 20
    RECONFIG_CHUNK = 21
    RECONFIG_COMMIT = 22
    BOOT_SELECT = 23
    REBOOT = 24


@dataclass
class MgmtMessage:
    """One management protocol message."""

    opcode: MgmtOp
    seq: int
    body: bytes = b""

    @classmethod
    def control(cls, opcode: MgmtOp, seq: int, **fields: object) -> "MgmtMessage":
        """Build a JSON-bodied control message."""
        return cls(opcode, seq, json.dumps(fields, sort_keys=True).encode())

    def json_body(self) -> dict:
        """Decode the body as a JSON object."""
        if not self.body:
            return {}
        try:
            decoded = json.loads(self.body)
        except ValueError as exc:
            raise ControlPlaneError("management body is not valid JSON") from exc
        if not isinstance(decoded, dict):
            raise ControlPlaneError("management body must be a JSON object")
        return decoded

    def pack(self, key: bytes) -> bytes:
        """Serialize and authenticate."""
        if len(self.body) > MAX_BODY:
            raise ControlPlaneError(
                f"management body too large ({len(self.body)} B > {MAX_BODY} B)"
            )
        head = _HEADER.pack(MAGIC, VERSION, int(self.opcode), self.seq, len(self.body))
        mac = hmac.new(key, head + self.body, hashlib.sha256).digest()[:MAC_LEN]
        return head + self.body + mac

    @classmethod
    def unpack(cls, data: bytes, key: bytes) -> "MgmtMessage":
        """Parse and verify a management payload."""
        if len(data) < _HEADER.size + MAC_LEN:
            raise ControlPlaneError("truncated management frame")
        magic, version, opcode, seq, body_len = _HEADER.unpack_from(data, 0)
        if magic != MAGIC:
            raise ControlPlaneError("bad management magic")
        if version != VERSION:
            raise ControlPlaneError(f"unsupported management version {version}")
        end = _HEADER.size + body_len
        if len(data) < end + MAC_LEN:
            raise ControlPlaneError("truncated management body")
        body = bytes(data[_HEADER.size : end])
        mac = bytes(data[end : end + MAC_LEN])
        expected = hmac.new(key, data[:end], hashlib.sha256).digest()[:MAC_LEN]
        if not hmac.compare_digest(mac, expected):
            raise ControlPlaneError("management frame authentication failed")
        try:
            op = MgmtOp(opcode)
        except ValueError as exc:
            raise ControlPlaneError(f"unknown management opcode {opcode}") from exc
        return cls(op, seq, body)


def mgmt_frame(
    message: MgmtMessage,
    key: bytes,
    src_mac: str | int,
    dst_mac: str | int,
) -> Packet:
    """Wrap a management message in an Ethernet frame."""
    return Packet(
        [Ethernet(dst=dst_mac, src=src_mac, ethertype=EtherType.FLEXSFP_MGMT)],
        message.pack(key),
    )


def chunk_body(offset: int, data: bytes) -> bytes:
    """Body of a RECONFIG_CHUNK: 4-byte offset plus raw image bytes."""
    if offset < 0:
        raise ControlPlaneError("negative chunk offset")
    return offset.to_bytes(4, "big") + data


def parse_chunk_body(body: bytes) -> tuple[int, bytes]:
    """Inverse of :func:`chunk_body`."""
    if len(body) < 4:
        raise ControlPlaneError("truncated reconfig chunk")
    return int.from_bytes(body[:4], "big"), body[4:]
