"""The FlexSFP module: shell + PPE + control plane + flash, as one device.

This is the top-level object a simulation plugs into a host NIC cage or a
switch port.  It owns two (or three) simulated ports, an arbiter that
demultiplexes management traffic to the embedded control plane, a
:class:`PacketProcessingEngine` running the deployed application at its
synthesized speed, and the SPI flash + reboot machinery that makes
over-the-network reprogramming real.

Latency constants (documented substitutes for measured silicon values):

* ``TRANSCEIVER_LATENCY_S`` — one SerDes+PCS crossing (~40 ns, typical for
  10GBASE-R retimers).
* ``PASSTHROUGH_LATENCY_S`` — the unprocessed direction of the
  One-Way-Filter shell (merge + retime, no PPE).
* ``CONTROL_PLANE_LATENCY_S`` — softcore turnaround for one management
  command (a few µs of RISC-V work).
* ``RECONFIG_DOWNTIME_S`` — fabric reprogram time from SPI flash; the
  module drops traffic while dark, exactly like the real device.
"""

from __future__ import annotations

from typing import Callable

from .._util import mac_to_int
from ..errors import BitstreamError, ConfigError, FlashError
from ..fpga.bitstream import Bitstream
from ..fpga.flash import SPIFlash
from ..fpga.resources import FPGADevice, MPF200T
from ..packet import BROADCAST_MAC, Packet
from ..sim.engine import Simulator
from ..sim.link import Port
from ..sim.stats import Counter
from .arbiter import Arbiter
from .controlplane import ControlPlane
from .ppe import Direction, PacketProcessingEngine, PPEApplication, Verdict
from .services import ServiceRegistry
from .shells import PROTOTYPE_SHELL, ShellKind, ShellSpec

TRANSCEIVER_LATENCY_S = 40e-9
PASSTHROUGH_LATENCY_S = 25e-9
CONTROL_PLANE_LATENCY_S = 5e-6
RECONFIG_DOWNTIME_S = 120e-3
WATCHDOG_TIMEOUT_S = 50e-3

DEFAULT_AUTH_KEY = b"flexsfp-mgmt-key"


class FlexSFPModule:
    """A programmable SFP+ module in the simulation.

    Parameters
    ----------
    sim, name:
        Simulation context and a unique device name.
    app:
        The deployed :class:`PPEApplication`.
    shell:
        Architecture shell (defaults to the prototype One-Way-Filter).
    device:
        Target FPGA (defaults to the prototype's MPF200T).
    auth_key / deploy_key:
        HMAC keys for management-frame authentication and bitstream
        signature verification respectively.
    build:
        A pre-computed :class:`~repro.hls.compiler.BuildResult`; when
        omitted the module synthesizes ``app`` itself (raising if it does
        not fit or misses timing).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        app: PPEApplication,
        shell: ShellSpec = PROTOTYPE_SHELL,
        device: FPGADevice = MPF200T,
        auth_key: bytes = DEFAULT_AUTH_KEY,
        deploy_key: bytes | None = None,
        build=None,
        flash_slots: int = 4,
        device_id: int = 0,
        mgmt_mac: str | int = "02:f5:f9:00:00:01",
        watchdog_timeout_s: float = WATCHDOG_TIMEOUT_S,
    ) -> None:
        from ..hls.compiler import compile_app  # deferred: avoids import cycle

        self.sim = sim
        self.name = name
        self.app = app
        self.shell = shell
        self.device = device
        self.device_id = device_id
        self.mgmt_mac = mgmt_mac
        self._mgmt_mac_int = mac_to_int(mgmt_mac)
        self.auth_key = auth_key
        self.deploy_key = deploy_key if deploy_key is not None else auth_key

        self.build = build if build is not None else compile_app(app, shell, device)
        self.flash = SPIFlash(slots=flash_slots)
        self.flash.store_bitstream(0, self.build.bitstream, allow_golden=True)
        self.flash.select_boot(0)

        self.edge_port = Port(sim, f"{name}.edge", rate_bps=shell.line_rate_bps)
        self.line_port = Port(sim, f"{name}.line", rate_bps=shell.line_rate_bps)
        self.edge_port.attach(self._on_edge_rx)
        self.line_port.attach(self._on_line_rx)
        self.mgmt_port: Port | None = None
        if shell.kind is ShellKind.ACTIVE_CORE:
            self.mgmt_port = Port(sim, f"{name}.mgmt", rate_bps=1e9)
            self.mgmt_port.attach(self._on_mgmt_rx)

        self.arbiter = Arbiter(name)
        self.control_plane = ControlPlane(self, auth_key)
        self.services = ServiceRegistry()
        self.ppe = PacketProcessingEngine(
            sim, app, self.build.report.timing, device_id=device_id
        )

        self._down = False
        self.degraded = False
        self.reboots = 0
        self.failed_boots = 0
        self.watchdog_timeout_s = watchdog_timeout_s
        self.watchdog_reboots = 0
        self.verdict_drops = Counter(f"{name}.verdict_drops")
        self.downtime_drops = Counter(f"{name}.downtime_drops")
        self.degraded_forwarded = Counter(f"{name}.degraded_forwarded")
        self.punted_to_cpu: list[Packet] = []

    # ------------------------------------------------------------------
    # Ingress handling
    # ------------------------------------------------------------------
    def _on_edge_rx(self, port: Port, packet: Packet) -> None:
        self._ingress(packet, Direction.EDGE_TO_LINE, reply_port=self.edge_port)

    def _on_line_rx(self, port: Port, packet: Packet) -> None:
        self._ingress(packet, Direction.LINE_TO_EDGE, reply_port=self.line_port)

    def _on_mgmt_rx(self, port: Port, packet: Packet) -> None:
        # The out-of-band management port carries only control traffic
        # addressed to (or broadcast at) this module.
        if (
            self.arbiter.classify(packet) == "cpu"
            and self._mgmt_addressing(packet) != "other"
        ):
            self._to_control_plane(packet, port)
        else:
            self.verdict_drops.count(packet.wire_len)

    def _mgmt_addressing(self, packet: Packet) -> str:
        """How a management frame relates to this module.

        ``"us"`` — unicast to our management MAC; ``"broadcast"`` —
        discovery traffic (consume *and* forward); ``"other"`` — another
        module's management traffic (pure data from our point of view).
        """
        eth = packet.eth
        if eth is None:
            return "other"
        if eth.dst == self._mgmt_mac_int:
            return "us"
        if eth.dst == BROADCAST_MAC:
            return "broadcast"
        return "other"

    def _ingress(self, packet: Packet, direction: Direction, reply_port: Port) -> None:
        if self._down:
            self.downtime_drops.count(packet.wire_len)
            return
        if self.arbiter.classify(packet) == "cpu":
            addressing = self._mgmt_addressing(packet)
            if addressing == "us":
                self._to_control_plane(packet, reply_port)
                return
            if addressing == "broadcast":
                # Answer discovery and let the frame continue downstream.
                self._to_control_plane(packet.copy(), reply_port)
            # Management traffic for other modules rides the data path.
        packet.meta["flexsfp_ingress_ns"] = int(self.sim.now * 1e9)
        if self.degraded:
            # Degraded pass-through: no PPE, both directions forward at
            # bare transceiver latency — the module is a dumb cable now.
            self.degraded_forwarded.count(packet.wire_len)
            self.sim.schedule(TRANSCEIVER_LATENCY_S, self._forward, packet, direction)
            return
        if self.shell.processes(direction):
            accepted = self.ppe.submit(
                packet,
                direction,
                lambda pkt, verdict, emitted, d=direction: self._ppe_done(
                    pkt, verdict, emitted, d
                ),
            )
            if not accepted:
                return  # counted by the PPE as an overload drop
        else:
            self.sim.schedule(
                TRANSCEIVER_LATENCY_S + PASSTHROUGH_LATENCY_S,
                self._forward,
                packet,
                direction,
            )

    # ------------------------------------------------------------------
    # Egress / verdict routing
    # ------------------------------------------------------------------
    def _egress_port(self, direction: Direction) -> Port:
        return self.line_port if direction is Direction.EDGE_TO_LINE else self.edge_port

    def _ingress_port(self, direction: Direction) -> Port:
        return self.edge_port if direction is Direction.EDGE_TO_LINE else self.line_port

    def _forward(self, packet: Packet, direction: Direction) -> None:
        self._egress_port(direction).send(packet)

    def _ppe_done(
        self,
        packet: Packet,
        verdict: Verdict,
        emitted: list[tuple[Packet, Direction]],
        direction: Direction,
    ) -> None:
        if verdict is Verdict.PASS:
            self.sim.schedule(TRANSCEIVER_LATENCY_S, self._forward, packet, direction)
        elif verdict is Verdict.REFLECT:
            self.sim.schedule(
                TRANSCEIVER_LATENCY_S, self._forward, packet, direction.reverse
            )
        elif verdict is Verdict.TO_CPU:
            self.punted_to_cpu.append(packet)
            # The embedded CPU's service chain may answer (§4.1's
            # "self-contained microservice node"); replies leave through
            # the interface the packet arrived on.
            self.sim.schedule(
                CONTROL_PLANE_LATENCY_S, self._run_services, packet, direction
            )
        else:  # DROP
            self.verdict_drops.count(packet.wire_len)
        for extra, extra_direction in emitted:
            self.sim.schedule(
                TRANSCEIVER_LATENCY_S, self._forward, extra, extra_direction
            )

    def _run_services(self, packet: Packet, direction: Direction) -> None:
        reply = self.services.dispatch(packet, direction)
        if reply is not None:
            self.arbiter.merge_from_cpu(reply)
            self._ingress_port(direction).send(reply)

    # ------------------------------------------------------------------
    # Control plane plumbing
    # ------------------------------------------------------------------
    def _to_control_plane(self, packet: Packet, reply_port: Port) -> None:
        reply = self.control_plane.handle_frame(packet)
        if reply is None:
            return
        eth = packet.eth
        requester = eth.src if eth is not None else 0
        from .mgmt import mgmt_frame  # deferred: tiny helper, avoids cycle

        response = mgmt_frame(reply, self.auth_key, self.mgmt_mac, requester)
        self.arbiter.merge_from_cpu(response)
        self.sim.schedule(CONTROL_PLANE_LATENCY_S, reply_port.send, response)

    # ------------------------------------------------------------------
    # Reprogramming / reboot
    # ------------------------------------------------------------------
    def load_via_jtag(self, bitstream, slot: int = 0) -> None:
        """Factory/JTAG load path: may program any slot, golden included."""
        self.flash.store_bitstream(slot, bitstream, allow_golden=True)

    def schedule_reboot(self, delay_s: float = 1e-3) -> None:
        """Arrange a reboot shortly after the current command completes."""
        self.sim.schedule(delay_s, self.reboot)

    def reboot(self, app_factory: Callable[[str, dict], PPEApplication] | None = None) -> None:
        """Reload the boot-slot bitstream and restart the PPE.

        The boot FSM is a watchdog (§4): it tries the selected slot, and
        on a corrupt or unreconstructible image (CRC failure, truncated
        flash, unknown application) counts a failed boot and falls back to
        the golden slot.  If golden fails too, the module enters *degraded
        pass-through* — both directions forward at transceiver latency
        with the PPE bypassed — rather than going dark; remote
        reprogramming can never brick the port.

        On a successful boot the module goes dark for
        ``RECONFIG_DOWNTIME_S`` (fabric reprogramming); ingress during
        that window is dropped and counted.  The new application instance
        is rebuilt from the bitstream's recorded parameters via the
        application registry (or a supplied factory).
        """
        if app_factory is None:
            from ..apps import create_app  # deferred: avoids import cycle

            app_factory = create_app
        booted = self._try_boot_slots(app_factory)
        if booted is None:
            self._enter_degraded()
            return
        bitstream, new_app = booted
        self.degraded = False
        self.control_plane.revive()  # the softcore restarts with the fabric
        self.app = new_app
        self.ppe = PacketProcessingEngine(
            self.sim, new_app, bitstream.timing, device_id=self.device_id
        )
        self.reboots += 1
        self._down = True
        self.sim.schedule(RECONFIG_DOWNTIME_S, self._boot_complete)

    def _try_boot_slots(
        self, app_factory: Callable[[str, dict], PPEApplication]
    ) -> tuple[Bitstream, PPEApplication] | None:
        """Boot-FSM core: selected slot first, then golden; None if both fail."""
        slots = [self.flash.boot_slot]
        if self.flash.boot_slot != 0:
            slots.append(0)
        for slot in slots:
            try:
                bitstream = self.flash.load_bitstream(slot)
            except (FlashError, BitstreamError):
                self.failed_boots += 1
                continue
            if bitstream.app_name == self.app.name:
                return bitstream, self.app  # same application: keep state
            try:
                params = bitstream.metadata.get("app_params", {})
                return bitstream, app_factory(bitstream.app_name, params)
            except ConfigError:
                # The image names an application this module cannot
                # reconstruct (e.g. a custom program not in the registry).
                self.failed_boots += 1
        return None

    def _enter_degraded(self) -> None:
        """Both boot images are unusable: degrade to a dumb cable.

        The fabric spends the usual reprogram window cycling through the
        slots, then the hardwired retimer path takes over.  The management
        endpoint stays reachable (it lives in the always-on configuration
        controller, like a real FPGA's system controller), so the fleet
        can push a fresh image and reboot the module out of degradation.
        """
        self.degraded = True
        self.control_plane.revive()
        self._down = True
        self.sim.schedule(RECONFIG_DOWNTIME_S, self._boot_complete)

    def _boot_complete(self) -> None:
        self._down = False

    @property
    def is_down(self) -> bool:
        return self._down

    # ------------------------------------------------------------------
    # Softcore watchdog (fault-injection surface)
    # ------------------------------------------------------------------
    def crash_softcore(self) -> None:
        """Wedge the control plane; the hardware watchdog reboots later."""
        self.control_plane.crash()
        self.sim.schedule(self.watchdog_timeout_s, self._watchdog_fire)

    def hang_softcore(self, duration_s: float) -> None:
        """Stall the control plane; it resumes on its own (no reboot)."""
        self.control_plane.hang(duration_s)

    def _watchdog_fire(self) -> None:
        if self.control_plane.crashed:
            self.watchdog_reboots += 1
            self.reboot()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        return {
            "app": self.app.name,
            "shell": self.shell.kind.value,
            "ppe": self.ppe.stats(),
            "verdict_drops": self.verdict_drops.snapshot(),
            "downtime_drops": self.downtime_drops.snapshot(),
            "control_plane": self.control_plane.stats(),
            "control_fraction": self.arbiter.control_fraction(),
            "reboots": self.reboots,
            "failed_boots": self.failed_boots,
            "degraded": self.degraded,
            "degraded_forwarded": self.degraded_forwarded.snapshot(),
            "boot_slot": self.flash.boot_slot,
            "watchdog_reboots": self.watchdog_reboots,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FlexSFPModule {self.name}: {self.app.name} on {self.device.name} "
            f"({self.shell.kind.value})>"
        )
