"""The FlexSFP module: shell + PPE + control plane + flash, as one device.

This is the top-level object a simulation plugs into a host NIC cage or a
switch port.  It owns two (or three) simulated ports, an arbiter that
demultiplexes management traffic to the embedded control plane, a
:class:`PacketProcessingEngine` running the deployed application at its
synthesized speed, and the SPI flash + reboot machinery that makes
over-the-network reprogramming real.

Latency constants (documented substitutes for measured silicon values):

* ``TRANSCEIVER_LATENCY_S`` — one SerDes+PCS crossing (~40 ns, typical for
  10GBASE-R retimers).
* ``PASSTHROUGH_LATENCY_S`` — the unprocessed direction of the
  One-Way-Filter shell (merge + retime, no PPE).
* ``CONTROL_PLANE_LATENCY_S`` — softcore turnaround for one management
  command (a few µs of RISC-V work).
* ``RECONFIG_DOWNTIME_S`` — fabric reprogram time from SPI flash; the
  module drops traffic while dark, exactly like the real device.
"""

from __future__ import annotations

from typing import Callable

from .._util import mac_to_int, warn_deprecated
from ..config import Settings
from ..engine import EngineConfig, resolve_engine
from ..errors import BitstreamError, ConfigError, FlashError
from ..fpga.bitstream import Bitstream
from ..fpga.flash import SPIFlash
from ..fpga.resources import FPGADevice, MPF200T
from ..nfv import Crossbar, Deployment, check_deployment
from ..packet import BROADCAST_MAC, Packet
from ..sim.engine import Simulator
from ..sim.link import Port
from ..sim.stats import Counter
from .arbiter import Arbiter
from .controlplane import ControlPlane
from .flowcache import DEFAULT_FLOW_CACHE_ENTRIES, FlowCache
from .ppe import Direction, PacketProcessingEngine, PPEApplication, Verdict
from .services import ServiceRegistry
from .shells import PROTOTYPE_SHELL, ShellKind, ShellSpec

TRANSCEIVER_LATENCY_S = 40e-9
PASSTHROUGH_LATENCY_S = 25e-9
CONTROL_PLANE_LATENCY_S = 5e-6
RECONFIG_DOWNTIME_S = 120e-3
WATCHDOG_TIMEOUT_S = 50e-3

DEFAULT_AUTH_KEY = b"flexsfp-mgmt-key"


class TenantSlot:
    """One tenant's runtime partition on a multi-tenant module.

    Each slot owns its own application instance, synthesized build,
    packet-processing engine, flow cache, and a two-slot SPI flash
    (slot 0 = the tenant's golden image, slot 1 = staging for partial
    reconfiguration).  The module steers ingress frames to slots through
    the :class:`~repro.nfv.Crossbar`; a slot going dark (its partition
    being reprogrammed) or degraded affects only frames steered to it.
    """

    def __init__(self, index: int, spec, module_name: str) -> None:
        self.index = index
        self.spec = spec
        self.name = spec.name
        base = f"{module_name}.tenant.{spec.name}"
        self.verdict_drops = Counter(f"{base}.verdict_drops")
        self.downtime_drops = Counter(f"{base}.downtime_drops")
        self.degraded_forwarded = Counter(f"{base}.degraded_forwarded")
        self.reboots = 0
        self.failed_boots = 0
        self.down = False
        self.degraded = False
        # The dark window of the latest (possibly announced) partial
        # reconfiguration, in *virtual* time.  Ingress evaluates frames
        # against this interval using their true wire-arrival timestamps
        # rather than the event time a coalesced flush replays them at,
        # so the drop/forward boundary is bit-identical across engines.
        self.dark_from: float | None = None
        self.dark_until: float = 0.0
        # Populated by the module during provisioning / reconfiguration:
        self.app: PPEApplication | None = None
        self.config: EngineConfig | None = None
        self.build = None
        self.program = None
        self.flow_cache: FlowCache | None = None
        self.flash: SPIFlash | None = None
        self.ppe: PacketProcessingEngine | None = None
        self.done_edge: Callable | None = None
        self.done_line: Callable | None = None

    def boot_complete(self) -> None:
        self.down = False

    def is_dark(self, when: float) -> bool:
        """Whether this slot's partition is being reprogrammed at ``when``."""
        return self.dark_from is not None and (
            self.dark_from <= when < self.dark_until
        )

    def metric_values(self) -> dict[str, object]:
        return {
            "app": self.app.name,
            "share": self.spec.share,
            "engine": self.config.tier,
            "reboots": self.reboots,
            "failed_boots": self.failed_boots,
            "degraded": self.degraded,
            "down": self.down,
            "boot_slot": self.flash.boot_slot,
        }


class FlexSFPModule:
    """A programmable SFP+ module in the simulation.

    Parameters
    ----------
    sim, name:
        Simulation context and a unique device name.
    deployment:
        A :class:`~repro.nfv.Deployment` — the ordered tenant slots this
        module hosts (one tenant for the classic single-function cable,
        several for multi-tenant NFV chaining with crossbar steering).
        Passing a bare :class:`PPEApplication` here (or via the ``app=``
        keyword) is the deprecated legacy form; it is wrapped in
        :meth:`~repro.nfv.Deployment.solo` and warns.
    shell:
        Architecture shell (defaults to the prototype One-Way-Filter).
    device:
        Target FPGA (defaults to the prototype's MPF200T).
    auth_key / deploy_key:
        HMAC keys for management-frame authentication and bitstream
        signature verification respectively.
    build:
        A pre-computed :class:`~repro.hls.compiler.BuildResult`; when
        omitted the module synthesizes ``app`` itself (raising if it does
        not fit or misses timing).
    fastpath / batch_size:
        Simulation-speed knobs (results are differentially tested to be
        identical): ``fastpath`` puts a :class:`FlowCache` in front of the
        PPE; ``batch_size`` > 1 drains up to that many frames per
        scheduled event and coalesces port events.  ``None`` defers to
        ``settings`` — the typed :class:`~repro.config.Settings` object
        resolved once at construction from the ``FLEXSFP_FASTPATH`` /
        ``FLEXSFP_BATCH`` environment variables (so CI can run the whole
        suite with the fast path on).
    settings:
        A pre-resolved :class:`~repro.config.Settings`; ``None`` resolves
        the environment here, once, instead of knob by knob.
    engine:
        The typed engine selection — an :class:`~repro.engine.EngineConfig`
        or a tier name (``reference`` / ``batched`` / ``compiled``).
        Mutually exclusive with the legacy ``fastpath``/``batch_size``
        knobs (passing both raises :class:`~repro.errors.ConfigError`);
        when omitted the legacy knobs and environment resolve through
        :func:`~repro.engine.resolve_engine` to the same tiers as before.
        The ``compiled`` tier additionally lowers the verified pipeline
        IR into a fused per-flow executor program
        (:func:`repro.hls.compile_executor`) and opts the data ports into
        the struct-of-arrays burst lane.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        deployment: "Deployment | PPEApplication | None" = None,
        shell: ShellSpec = PROTOTYPE_SHELL,
        device: FPGADevice = MPF200T,
        auth_key: bytes = DEFAULT_AUTH_KEY,
        deploy_key: bytes | None = None,
        build=None,
        flash_slots: int = 4,
        device_id: int = 0,
        mgmt_mac: str | int = "02:f5:f9:00:00:01",
        watchdog_timeout_s: float = WATCHDOG_TIMEOUT_S,
        fastpath: bool | None = None,
        batch_size: int | None = None,
        flow_cache_entries: int = DEFAULT_FLOW_CACHE_ENTRIES,
        settings: Settings | None = None,
        engine: "EngineConfig | str | None" = None,
        app: PPEApplication | None = None,
    ) -> None:
        from ..hls.compiler import compile_app  # deferred: avoids import cycle

        if app is not None:
            if deployment is not None:
                raise ConfigError(
                    "pass either a deployment or the legacy app, not both"
                )
            warn_deprecated(
                "FlexSFPModule(app=...)",
                "FlexSFPModule(deployment=Deployment.solo(app))",
            )
            deployment = Deployment.solo(app)
        elif deployment is None:
            raise ConfigError("FlexSFPModule needs a Deployment")
        elif not isinstance(deployment, Deployment):
            # A bare application in the old positional slot.
            warn_deprecated(
                "FlexSFPModule(app=...)",
                "FlexSFPModule(deployment=Deployment.solo(app))",
            )
            deployment = Deployment.solo(deployment)
        if deployment.shell is not None:
            shell = deployment.shell
        if deployment.device is not None:
            device = deployment.device

        self.sim = sim
        self.name = name
        self.deployment = deployment
        self._multi = deployment.multi_tenant
        self.shell = shell
        self.device = device
        self.device_id = device_id
        self.mgmt_mac = mgmt_mac
        self._mgmt_mac_int = mac_to_int(mgmt_mac)
        self.auth_key = auth_key
        self.deploy_key = deploy_key if deploy_key is not None else auth_key

        if engine is not None and (fastpath is not None or batch_size is not None):
            raise ConfigError(
                "engine conflicts with the legacy fastpath/batch_size knobs; "
                "pass one EngineConfig (or tier name) and let it carry the "
                "options"
            )
        solo_spec = deployment.tenants[0]
        if (
            not self._multi
            and engine is None
            and fastpath is None
            and batch_size is None
            and solo_spec.engine is not None
        ):
            engine = solo_spec.engine
        self.engine_config = resolve_engine(engine, fastpath, batch_size, settings)
        self.fastpath = self.engine_config.fastpath
        self.batch_size = self.engine_config.batch_size
        self._flow_cache_entries = flow_cache_entries
        self._settings = settings

        self.slots: list[TenantSlot] = []
        self.crossbar: Crossbar | None = None
        if self._multi:
            if build is not None:
                raise ConfigError(
                    "a pre-computed build applies to single-tenant modules only"
                )
            from ..analysis.findings import errors as finding_errors

            blocking = finding_errors(check_deployment(deployment, shell, device))
            if blocking:
                raise ConfigError(
                    "infeasible deployment: "
                    + "; ".join(f.message for f in blocking)
                )
            for index, spec in enumerate(deployment.tenants):
                slot = TenantSlot(index, spec, name)
                self._provision_slot(slot, spec.build_app())
                self.slots.append(slot)
            self.crossbar = Crossbar(name, deployment.tenants)
            self.app = self.slots[0].app
            self.flow_cache = None
            self.program = None
            # The module-level flash keeps the first tenant's image as the
            # golden slot so control-plane OTA and boot metrics stay
            # meaningful; per-tenant images live in the slot flashes.
            self.build = self.slots[0].build
        else:
            app = solo_spec.build_app()
            self.app = app
            self.flow_cache = (
                FlowCache(flow_cache_entries, name=f"{name}.flow_cache")
                if self.fastpath
                else None
            )
            self.program = None
            if self.engine_config.compiled:
                from ..hls.executor import compile_executor  # deferred: cycle

                executor = compile_executor(
                    app, shell, device=device, flow_cache_entries=flow_cache_entries
                )
                self.program = executor.program
                self.build = build if build is not None else executor.build
            else:
                self.build = (
                    build
                    if build is not None
                    else compile_app(
                        app,
                        shell,
                        device,
                        flow_cache_entries=flow_cache_entries
                        if self.fastpath
                        else None,
                    )
                )
        self.flash = SPIFlash(slots=flash_slots)
        self.flash.store_bitstream(0, self.build.bitstream, allow_golden=True)
        self.flash.select_boot(0)

        # Batched execution also opts the module's own ports into batched
        # delivery: the ingress path understands ``link_deliver_s`` stamps.
        coalesce = self.batch_size > 1
        self.edge_port = Port(
            sim,
            f"{name}.edge",
            rate_bps=shell.line_rate_bps,
            coalesce=coalesce,
            batch_rx=coalesce,
        )
        self.line_port = Port(
            sim,
            f"{name}.line",
            rate_bps=shell.line_rate_bps,
            coalesce=coalesce,
            batch_rx=coalesce,
        )
        self.edge_port.attach(self._on_edge_rx)
        self.line_port.attach(self._on_line_rx)
        if coalesce:
            # One PPE group-event commit per delivery flush instead of a
            # cancel/re-arm per submitted frame.  Routed through module
            # methods (not bound PPE methods) so a reboot-swapped engine
            # keeps receiving the brackets.
            self.edge_port.rx_flush_begin = self._rx_flush_begin
            self.edge_port.rx_flush_end = self._rx_flush_end
            self.line_port.rx_flush_begin = self._rx_flush_begin
            self.line_port.rx_flush_end = self._rx_flush_end
            # Whole-flush ingress: one call per delivery batch.
            self.edge_port.attach_batch(self._on_edge_rx_batch)
            self.line_port.attach_batch(self._on_line_rx_batch)
        if self.program is not None:
            # Compiled tier: whole bursts arrive as one template + a
            # struct-of-arrays vector of delivery times.
            self.edge_port.attach_burst(self._on_edge_rx_burst)
            self.line_port.attach_burst(self._on_line_rx_burst)
        self.mgmt_port: Port | None = None
        if shell.kind is ShellKind.ACTIVE_CORE:
            self.mgmt_port = Port(sim, f"{name}.mgmt", rate_bps=1e9)
            self.mgmt_port.attach(self._on_mgmt_rx)

        self.arbiter = Arbiter(name)
        self.control_plane = ControlPlane(self, auth_key)
        self.services = ServiceRegistry()
        # Multi-tenant modules run one engine per slot; the module-level
        # engine handle stays None and every PPE touch branches on _multi.
        self.ppe = (
            None
            if self._multi
            else PacketProcessingEngine(
                sim,
                self.app,
                self.build.report.timing,
                device_id=device_id,
                batch_size=self.batch_size,
                flow_cache=self.flow_cache,
                program=self.program,
            )
        )

        # Optional packet tracer (duck-typed repro.obs.trace.Tracer), set
        # via attach_tracer.  None costs one attribute load per frame.
        self._tracer = None

        self._down = False
        self.degraded = False
        self.reboots = 0
        self.failed_boots = 0
        self.watchdog_timeout_s = watchdog_timeout_s
        self.watchdog_reboots = 0
        self.verdict_drops = Counter(f"{name}.verdict_drops")
        self.downtime_drops = Counter(f"{name}.downtime_drops")
        self.degraded_forwarded = Counter(f"{name}.degraded_forwarded")
        self.punted_to_cpu: list[Packet] = []

    # ------------------------------------------------------------------
    # Tenant slot provisioning (multi-tenant deployments)
    # ------------------------------------------------------------------
    def _provision_slot(self, slot: TenantSlot, app: PPEApplication) -> None:
        """Synthesize one tenant's partition: build, flash, engine."""
        from ..hls.compiler import compile_app  # deferred: avoids import cycle

        spec = slot.spec
        slot.app = app
        slot.config = (
            resolve_engine(spec.engine, None, None, self._settings)
            if spec.engine is not None
            else self.engine_config
        )
        slot.flow_cache = (
            FlowCache(
                self._flow_cache_entries,
                name=f"{self.name}.tenant.{spec.name}.flow_cache",
            )
            if slot.config.fastpath
            else None
        )
        if slot.config.compiled:
            from ..hls.executor import compile_executor  # deferred: cycle

            executor = compile_executor(
                app,
                self.shell,
                device=self.device,
                flow_cache_entries=self._flow_cache_entries,
            )
            slot.program = executor.program
            slot.build = executor.build
        else:
            slot.program = None
            slot.build = compile_app(
                app,
                self.shell,
                self.device,
                flow_cache_entries=self._flow_cache_entries
                if slot.config.fastpath
                else None,
            )
        # Two per-tenant images: slot 0 is the tenant's golden fallback,
        # slot 1 the staging area partial reconfiguration writes into.
        slot.flash = SPIFlash(slots=2)
        slot.flash.store_bitstream(0, slot.build.bitstream, allow_golden=True)
        slot.flash.select_boot(0)
        slot.ppe = PacketProcessingEngine(
            self.sim,
            app,
            slot.build.report.timing,
            device_id=self.device_id,
            batch_size=slot.config.batch_size,
            flow_cache=slot.flow_cache,
            program=slot.program,
        )
        slot.done_edge = self._make_slot_done(slot, Direction.EDGE_TO_LINE)
        slot.done_line = self._make_slot_done(slot, Direction.LINE_TO_EDGE)

    def _make_slot_done(self, slot: TenantSlot, direction: Direction) -> Callable:
        def done(
            packet: Packet,
            verdict: Verdict,
            emitted: list[tuple[Packet, Direction]],
        ) -> None:
            self._ppe_done(packet, verdict, emitted, direction, slot.verdict_drops)

        return done

    def tenant_slot(self, name: str) -> TenantSlot:
        """The runtime slot for tenant *name* (multi-tenant modules)."""
        for slot in self.slots:
            if slot.name == name:
                return slot
        raise ConfigError(
            f"no tenant {name!r} on {self.name} "
            f"(tenants: {[slot.name for slot in self.slots]})"
        )

    # ------------------------------------------------------------------
    # Ingress handling
    # ------------------------------------------------------------------
    def _on_edge_rx(self, port: Port, packet: Packet) -> None:
        self._ingress(packet, Direction.EDGE_TO_LINE, reply_port=self.edge_port)

    def _on_line_rx(self, port: Port, packet: Packet) -> None:
        self._ingress(packet, Direction.LINE_TO_EDGE, reply_port=self.line_port)

    def _rx_flush_begin(self) -> None:
        if self._multi:
            for slot in self.slots:
                slot.ppe.flush_begin()
        else:
            self.ppe.flush_begin()

    def _rx_flush_end(self) -> None:
        if self._multi:
            for slot in self.slots:
                slot.ppe.flush_end()
        else:
            self.ppe.flush_end()

    def _on_edge_rx_batch(
        self, port: Port, items: list[tuple[Packet, int, float]]
    ) -> None:
        self._ingress_batch(items, Direction.EDGE_TO_LINE, self.edge_port)

    def _on_line_rx_batch(
        self, port: Port, items: list[tuple[Packet, int, float]]
    ) -> None:
        self._ingress_batch(items, Direction.LINE_TO_EDGE, self.line_port)

    def _ingress_batch(
        self,
        items: list[tuple[Packet, int, float]],
        direction: Direction,
        reply_port: Port,
    ) -> None:
        """Whole-flush ingress: :meth:`_ingress` fused over one delivery batch.

        Per-frame behaviour (classification order, timestamps, drop
        accounting) is identical to the per-frame path with ``at_s`` set
        to each frame's stamped delivery time.  Module state transitions
        (reboot, degradation, PPE swap) are all event-scheduled, so the
        hot-path lookups are loop-invariant within one flush.
        """
        if self._down:
            drops = self.downtime_drops
            for _packet, size, _when in items:
                drops.count(size)
            return
        if self._multi:
            # Crossbar steering is per-frame state (slot down/degraded can
            # flip mid-flush only via scheduled events, but tenants differ
            # frame to frame): replay through the per-frame path with each
            # frame's stamped delivery time.
            for packet, _size, when in items:
                packet.meta["link_deliver_s"] = when
                self._ingress(packet, direction, reply_port)
            return
        classify = self.arbiter.classify
        degraded = self.degraded
        processes = self.shell.processes(direction)
        # ``submit`` dispatches on batch mode per call; batched modules
        # can bind the batched admission directly.
        ppe = self.ppe
        batched = ppe.batch_size > 1
        submit = ppe._submit_batched if batched else ppe.submit
        done = (
            self._done_edge_to_line
            if direction is Direction.EDGE_TO_LINE
            else self._done_line_to_edge
        )
        tracer = self._tracer
        for packet, size, when in items:
            if tracer is not None and tracer.admit(packet):
                when_ns = int(when * 1e9)
                tracer.record(
                    packet,
                    "mac.rx",
                    self.name,
                    when_ns,
                    when_ns,
                    direction,
                    port=reply_port.name,
                    size=size,
                )
                classified = classify(packet, size)
                tracer.record(
                    packet,
                    "arbiter",
                    self.name,
                    when_ns,
                    when_ns,
                    direction,
                    classified=classified,
                )
            else:
                classified = classify(packet, size)
            if classified == "cpu":
                addressing = self._mgmt_addressing(packet)
                if addressing == "us":
                    self._to_control_plane(packet, reply_port, when)
                    continue
                if addressing == "broadcast":
                    self._to_control_plane(packet.copy(), reply_port, when)
            packet.meta["flexsfp_ingress_ns"] = int(when * 1e9)
            if degraded:
                self.degraded_forwarded.count(size)
                self._egress_port(direction).send_at(
                    packet, when + TRANSCEIVER_LATENCY_S, size
                )
            elif processes:
                if batched:
                    submit(packet, size, direction, done, when)
                else:
                    submit(packet, direction, done, at_s=when, size=size)
            else:
                self._egress_port(direction).send_at(
                    packet,
                    when + (TRANSCEIVER_LATENCY_S + PASSTHROUGH_LATENCY_S),
                    size,
                )

    def _on_edge_rx_burst(
        self, port: Port, template: Packet, size: int, whens
    ) -> None:
        self._ingress_burst(
            template, size, whens, Direction.EDGE_TO_LINE, self.edge_port
        )

    def _on_line_rx_burst(
        self, port: Port, template: Packet, size: int, whens
    ) -> None:
        self._ingress_burst(
            template, size, whens, Direction.LINE_TO_EDGE, self.line_port
        )

    def _ingress_burst(
        self,
        template: Packet,
        size: int,
        whens,
        direction: Direction,
        reply_port: Port,
    ) -> None:
        """Compiled-tier ingress: one template + delivery-time vector.

        Per-frame counters, timestamps and drop decisions are identical to
        :meth:`_ingress_batch` over the expanded frames.  Paths with
        per-frame side effects (tracing, management addressing, degraded
        forwarding) deopt to exactly that expansion.
        """
        count = len(whens)
        if self._down:
            drops = self.downtime_drops
            drops.packets += count
            drops.bytes += count * size
            return
        if self._tracer is not None or self.degraded or self._multi:
            self._ingress_batch(
                [
                    (template.copy(), size, when)
                    for when in whens.tolist()
                ],
                direction,
                reply_port,
            )
            return
        classified = self.arbiter.classify_bulk(template, size, count)
        if classified != "data":
            # A burst of management frames: replay per frame (the bulk
            # classification already counted them — don't count twice).
            done = (
                self._done_edge_to_line
                if direction is Direction.EDGE_TO_LINE
                else self._done_line_to_edge
            )
            ppe = self.ppe
            batched = ppe.batch_size > 1
            for when in whens.tolist():
                packet = template.copy()
                addressing = self._mgmt_addressing(packet)
                if addressing == "us":
                    self._to_control_plane(packet, reply_port, when)
                    continue
                if addressing == "broadcast":
                    self._to_control_plane(packet.copy(), reply_port, when)
                packet.meta["flexsfp_ingress_ns"] = int(when * 1e9)
                if self.shell.processes(direction):
                    if batched:
                        ppe._submit_batched(packet, size, direction, done, when)
                    else:
                        ppe.submit(packet, direction, done, at_s=when, size=size)
                else:
                    self._egress_port(direction).send_at(
                        packet,
                        when + (TRANSCEIVER_LATENCY_S + PASSTHROUGH_LATENCY_S),
                        size,
                    )
            return
        template.meta["flexsfp_ingress_ns"] = int(float(whens[0]) * 1e9)
        if not self.shell.processes(direction):
            # Unprocessed direction: vectorized pass-through at retimer
            # latency (same scalar constant added per element).
            self._egress_port(direction).send_burst(
                template,
                size,
                whens + (TRANSCEIVER_LATENCY_S + PASSTHROUGH_LATENCY_S),
            )
            return
        self.ppe.submit_burst(
            template,
            size,
            direction,
            whens,
            self._burst_done_edge_to_line
            if direction is Direction.EDGE_TO_LINE
            else self._burst_done_line_to_edge,
            self._done_edge_to_line
            if direction is Direction.EDGE_TO_LINE
            else self._done_line_to_edge,
        )

    def _on_mgmt_rx(self, port: Port, packet: Packet) -> None:
        # The out-of-band management port carries only control traffic
        # addressed to (or broadcast at) this module.
        if (
            self.arbiter.classify(packet) == "cpu"
            and self._mgmt_addressing(packet) != "other"
        ):
            self._to_control_plane(packet, port)
        else:
            self.verdict_drops.count(packet.wire_len)

    def _mgmt_addressing(self, packet: Packet) -> str:
        """How a management frame relates to this module.

        ``"us"`` — unicast to our management MAC; ``"broadcast"`` —
        discovery traffic (consume *and* forward); ``"other"`` — another
        module's management traffic (pure data from our point of view).
        """
        eth = packet.eth
        if eth is None:
            return "other"
        if eth.dst == self._mgmt_mac_int:
            return "us"
        if eth.dst == BROADCAST_MAC:
            return "broadcast"
        return "other"

    def _ingress(self, packet: Packet, direction: Direction, reply_port: Port) -> None:
        if self._down:
            self.downtime_drops.count(packet.wire_len)
            return
        # Batch-delivered ingress hands the frame over early, carrying its
        # exact wire arrival; everything below uses that virtual time so
        # timestamps and occupancy checks match the event-per-frame run.
        at_s = packet.meta.pop("link_deliver_s", None)
        size = packet.wire_len
        tracer = self._tracer
        traced = tracer is not None and tracer.admit(packet)
        if traced:
            arrival_ns = int((self.sim.now if at_s is None else at_s) * 1e9)
            tracer.record(
                packet,
                "mac.rx",
                self.name,
                arrival_ns,
                arrival_ns,
                direction,
                port=reply_port.name,
                size=size,
            )
        classified = self.arbiter.classify(packet, size)
        if traced:
            tracer.record(
                packet,
                "arbiter",
                self.name,
                arrival_ns,
                arrival_ns,
                direction,
                classified=classified,
            )
        if classified == "cpu":
            addressing = self._mgmt_addressing(packet)
            if addressing == "us":
                self._to_control_plane(packet, reply_port, at_s)
                return
            if addressing == "broadcast":
                # Answer discovery and let the frame continue downstream.
                self._to_control_plane(packet.copy(), reply_port, at_s)
            # Management traffic for other modules rides the data path.
        packet.meta["flexsfp_ingress_ns"] = int(
            (self.sim.now if at_s is None else at_s) * 1e9
        )
        if self._multi:
            self._ingress_tenant(packet, direction, at_s, size, traced)
            return
        if self.degraded:
            # Degraded pass-through: no PPE, both directions forward at
            # bare transceiver latency — the module is a dumb cable now.
            self.degraded_forwarded.count(size)
            port = self._egress_port(direction)
            if at_s is None:
                port.send_delayed(packet, TRANSCEIVER_LATENCY_S)
            else:
                port.send_at(packet, at_s + TRANSCEIVER_LATENCY_S, size)
            return
        if self.shell.processes(direction):
            accepted = self.ppe.submit(
                packet,
                direction,
                self._done_edge_to_line
                if direction is Direction.EDGE_TO_LINE
                else self._done_line_to_edge,
                at_s=at_s,
                size=size,
            )
            if not accepted:
                return  # counted by the PPE as an overload drop
        else:
            port = self._egress_port(direction)
            if at_s is None:
                port.send_delayed(
                    packet, TRANSCEIVER_LATENCY_S + PASSTHROUGH_LATENCY_S
                )
            else:
                port.send_at(
                    packet,
                    at_s + (TRANSCEIVER_LATENCY_S + PASSTHROUGH_LATENCY_S),
                )

    def _ingress_tenant(
        self,
        packet: Packet,
        direction: Direction,
        at_s: float | None,
        size: int,
        traced: bool,
    ) -> None:
        """Crossbar stage: steer one data-plane frame to its tenant slot.

        Slot-local state (dark during partial reconfiguration, degraded
        after a failed slot boot) affects only frames steered to that
        slot — the other tenants keep forwarding, which is the whole
        point of per-slot images.
        """
        if not self.shell.processes(direction):
            # The unprocessed direction bypasses the PPE partitions (and
            # therefore the crossbar) entirely, exactly like the
            # single-tenant shell datapath.
            port = self._egress_port(direction)
            if at_s is None:
                port.send_delayed(
                    packet, TRANSCEIVER_LATENCY_S + PASSTHROUGH_LATENCY_S
                )
            else:
                port.send_at(
                    packet,
                    at_s + (TRANSCEIVER_LATENCY_S + PASSTHROUGH_LATENCY_S),
                )
            return
        slot = self.slots[self.crossbar.steer(packet, size)]
        if traced:
            when_ns = packet.meta["flexsfp_ingress_ns"]
            self._tracer.record(
                packet,
                "crossbar",
                self.name,
                when_ns,
                when_ns,
                direction,
                tenant=slot.name,
            )
        when = self.sim.now if at_s is None else at_s
        if slot.is_dark(when):
            slot.downtime_drops.count(size)
            return
        if slot.degraded:
            slot.degraded_forwarded.count(size)
            port = self._egress_port(direction)
            if at_s is None:
                port.send_delayed(packet, TRANSCEIVER_LATENCY_S)
            else:
                port.send_at(packet, at_s + TRANSCEIVER_LATENCY_S, size)
            return
        slot.ppe.submit(
            packet,
            direction,
            slot.done_edge if direction is Direction.EDGE_TO_LINE else slot.done_line,
            at_s=at_s,
            size=size,
        )

    # ------------------------------------------------------------------
    # Egress / verdict routing
    # ------------------------------------------------------------------
    def _egress_port(self, direction: Direction) -> Port:
        return self.line_port if direction is Direction.EDGE_TO_LINE else self.edge_port

    def _ingress_port(self, direction: Direction) -> Port:
        return self.edge_port if direction is Direction.EDGE_TO_LINE else self.line_port

    def _forward(self, packet: Packet, direction: Direction) -> None:
        self._egress_port(direction).send(packet)

    # Pre-bound PPE completion callbacks (one per direction) so the hot
    # ingress path does not allocate a closure per frame.
    def _done_edge_to_line(
        self,
        packet: Packet,
        verdict: Verdict,
        emitted: list[tuple[Packet, Direction]],
    ) -> None:
        self._ppe_done(packet, verdict, emitted, Direction.EDGE_TO_LINE)

    def _done_line_to_edge(
        self,
        packet: Packet,
        verdict: Verdict,
        emitted: list[tuple[Packet, Direction]],
    ) -> None:
        self._ppe_done(packet, verdict, emitted, Direction.LINE_TO_EDGE)

    def _burst_done_edge_to_line(
        self, packet: Packet, verdict: Verdict, size: int, deliver_s
    ) -> None:
        self._ppe_burst_done(packet, verdict, size, deliver_s, Direction.EDGE_TO_LINE)

    def _burst_done_line_to_edge(
        self, packet: Packet, verdict: Verdict, size: int, deliver_s
    ) -> None:
        self._ppe_burst_done(packet, verdict, size, deliver_s, Direction.LINE_TO_EDGE)

    def _ppe_burst_done(
        self,
        packet: Packet,
        verdict: Verdict,
        size: int,
        deliver_s,
        direction: Direction,
    ) -> None:
        """Fused-slice completion: PASS egresses the whole slice as one burst.

        Fused slices only ever complete with PASS or DROP (anything else
        deopts inside the PPE), and the transceiver crossing is added with
        the same scalar constant as the per-frame path.
        """
        if verdict is Verdict.PASS:
            self._egress_port(direction).send_burst(
                packet, size, deliver_s + TRANSCEIVER_LATENCY_S
            )
        else:  # DROP
            count = len(deliver_s)
            drops = self.verdict_drops
            drops.packets += count
            drops.bytes += count * size

    def _ppe_done(
        self,
        packet: Packet,
        verdict: Verdict,
        emitted: list[tuple[Packet, Direction]],
        direction: Direction,
        drops: Counter | None = None,
    ) -> None:
        # Batched PPE execution runs this callback at the batch tail but
        # records the frame's virtual deliver time; egressing at that
        # absolute time (plus the transceiver crossing, added in the same
        # float order as the event-per-frame path) keeps downstream
        # serialization timestamps bit-identical.
        deliver_s = packet.meta.pop("ppe_deliver_s", None)
        tracer = self._tracer
        if tracer is not None and tracer.is_traced(packet):
            egress_ns = int(
                (self.sim.now if deliver_s is None else deliver_s) * 1e9
            )
            detail: dict[str, object] = {"verdict": verdict.value}
            if verdict is Verdict.PASS:
                detail["port"] = self._egress_port(direction).name
            elif verdict is Verdict.REFLECT:
                detail["port"] = self._egress_port(direction.reverse).name
            tracer.record(
                packet,
                "egress",
                self.name,
                egress_ns,
                egress_ns,
                direction,
                **detail,
            )
        if verdict is Verdict.PASS:
            # Inlined _egress/send_at for the dominant verdict: identical
            # arithmetic, two fewer calls per frame.
            port = (
                self.line_port
                if direction is Direction.EDGE_TO_LINE
                else self.edge_port
            )
            if deliver_s is None:
                port.send_delayed(packet, TRANSCEIVER_LATENCY_S)
            elif port.coalesce and port._peer is not None:
                port._reserve_tx(packet, deliver_s + TRANSCEIVER_LATENCY_S)
            else:
                port.send_at(packet, deliver_s + TRANSCEIVER_LATENCY_S)
        elif verdict is Verdict.REFLECT:
            self._egress(self._egress_port(direction.reverse), packet, deliver_s)
        elif verdict is Verdict.TO_CPU:
            self.punted_to_cpu.append(packet)
            # The embedded CPU's service chain may answer (§4.1's
            # "self-contained microservice node"); replies leave through
            # the interface the packet arrived on.
            at = (
                self.sim.now if deliver_s is None else deliver_s
            ) + CONTROL_PLANE_LATENCY_S
            self.sim.schedule_at(
                max(at, self.sim.now), self._run_services, packet, direction
            )
        else:  # DROP
            (self.verdict_drops if drops is None else drops).count(packet.wire_len)
        for extra, extra_direction in emitted:
            self._egress(self._egress_port(extra_direction), extra, deliver_s)

    def _egress(self, port: Port, packet: Packet, deliver_s: float | None) -> None:
        if deliver_s is None:
            port.send_delayed(packet, TRANSCEIVER_LATENCY_S)
        else:
            port.send_at(packet, deliver_s + TRANSCEIVER_LATENCY_S)

    def _run_services(self, packet: Packet, direction: Direction) -> None:
        reply = self.services.dispatch(packet, direction)
        if reply is not None:
            self.arbiter.merge_from_cpu(reply)
            self._ingress_port(direction).send(reply)

    # ------------------------------------------------------------------
    # Control plane plumbing
    # ------------------------------------------------------------------
    def _to_control_plane(
        self, packet: Packet, reply_port: Port, at_s: float | None = None
    ) -> None:
        reply = self.control_plane.handle_frame(packet)
        if reply is None:
            return
        eth = packet.eth
        requester = eth.src if eth is not None else 0
        from .mgmt import mgmt_frame  # deferred: tiny helper, avoids cycle

        response = mgmt_frame(reply, self.auth_key, self.mgmt_mac, requester)
        self.arbiter.merge_from_cpu(response)
        if at_s is None:
            self.sim.schedule(CONTROL_PLANE_LATENCY_S, reply_port.send, response)
        else:
            when = at_s + CONTROL_PLANE_LATENCY_S
            now = self.sim.now
            self.sim.schedule_at(
                when if when > now else now, reply_port.send, response
            )

    # ------------------------------------------------------------------
    # Reprogramming / reboot
    # ------------------------------------------------------------------
    def load_via_jtag(self, bitstream, slot: int = 0) -> None:
        """Factory/JTAG load path: may program any slot, golden included."""
        self.flash.store_bitstream(slot, bitstream, allow_golden=True)

    def schedule_reboot(self, delay_s: float = 1e-3) -> None:
        """Arrange a reboot shortly after the current command completes."""
        self.sim.schedule(delay_s, self.reboot)

    def reboot(self, app_factory: Callable[[str, dict], PPEApplication] | None = None) -> None:
        """Reload the boot-slot bitstream and restart the PPE.

        The boot FSM is a watchdog (§4): it tries the selected slot, and
        on a corrupt or unreconstructible image (CRC failure, truncated
        flash, unknown application) counts a failed boot and falls back to
        the golden slot.  If golden fails too, the module enters *degraded
        pass-through* — both directions forward at transceiver latency
        with the PPE bypassed — rather than going dark; remote
        reprogramming can never brick the port.

        On a successful boot the module goes dark for
        ``RECONFIG_DOWNTIME_S`` (fabric reprogramming); ingress during
        that window is dropped and counted.  The new application instance
        is rebuilt from the bitstream's recorded parameters via the
        application registry (or a supplied factory).
        """
        if app_factory is None:
            from ..apps import create_app  # deferred: avoids import cycle

            app_factory = create_app
        if self._multi:
            # A whole-module reboot reloads every tenant partition from
            # its own boot image; the shared fabric (MACs, crossbar,
            # softcore) goes dark for one reprogram window.
            for slot in self.slots:
                self._boot_tenant_slot(slot, app_factory)
            self.control_plane.revive()
            self.reboots += 1
            self._down = True
            self.sim.schedule(RECONFIG_DOWNTIME_S, self._boot_complete)
            return
        booted = self._try_boot_slots(app_factory)
        if booted is None:
            self._enter_degraded()
            return
        bitstream, new_app = booted
        self.degraded = False
        self.control_plane.revive()  # the softcore restarts with the fabric
        self.app = new_app
        if self.flow_cache is not None:
            # Recipes replay against the application instance; a reboot may
            # swap it, so every cached decision is stale.
            self.flow_cache.invalidate()
        if self.program is not None:
            # The compiled tier re-fuses against the booted application —
            # recipes are compiled per app instance, like the flow cache.
            from ..hls.executor import compile_executor  # deferred: cycle

            self.program = compile_executor(
                new_app,
                self.shell,
                device=self.device,
                flow_cache_entries=self._flow_cache_entries,
            ).program
        self.ppe = PacketProcessingEngine(
            self.sim,
            new_app,
            bitstream.timing,
            device_id=self.device_id,
            batch_size=self.batch_size,
            flow_cache=self.flow_cache,
            program=self.program,
        )
        # An attached tracer survives the engine swap.
        self.ppe.tracer = self._tracer
        self.reboots += 1
        self._down = True
        self.sim.schedule(RECONFIG_DOWNTIME_S, self._boot_complete)

    def _try_boot_slots(
        self, app_factory: Callable[[str, dict], PPEApplication]
    ) -> tuple[Bitstream, PPEApplication] | None:
        """Boot-FSM core: selected slot first, then golden; None if both fail."""
        slots = [self.flash.boot_slot]
        if self.flash.boot_slot != 0:
            slots.append(0)
        for slot in slots:
            try:
                bitstream = self.flash.load_bitstream(slot)
            except (FlashError, BitstreamError):
                self.failed_boots += 1
                continue
            if bitstream.app_name == self.app.name:
                return bitstream, self.app  # same application: keep state
            try:
                params = bitstream.metadata.get("app_params", {})
                return bitstream, app_factory(bitstream.app_name, params)
            except ConfigError:
                # The image names an application this module cannot
                # reconstruct (e.g. a custom program not in the registry).
                self.failed_boots += 1
        return None

    # ------------------------------------------------------------------
    # Partial reconfiguration (per-tenant slot images)
    # ------------------------------------------------------------------
    def reconfigure_tenant(
        self,
        tenant: str,
        app: PPEApplication | None = None,
        bitstream: Bitstream | None = None,
        at_s: float | None = None,
    ) -> None:
        """Swap one tenant's slot image while the other slots forward.

        The new image (a pre-signed *bitstream*, or one synthesized here
        from *app* at the slot's engine tier) is written to the slot's
        staging flash and booted through the per-slot boot FSM: staging
        first, the tenant's golden image on a corrupt or
        unreconstructible staging image (each failure counted in the
        slot's ``failed_boots``), degraded slot pass-through if both
        fail.  Only the reconfigured slot goes dark for the reprogram
        window — frames steered to it are counted in its
        ``downtime_drops`` while every other tenant's forwarding
        continues untouched, which is what makes this *partial*
        reconfiguration rather than the whole-module reboot.

        ``at_s`` *announces* the reconfiguration for a future virtual
        time: the slot's dark window is registered immediately (so
        batch-coalesced frames that arrive early in event time but carry
        in-window timestamps are classified identically to a per-frame
        run) and the image swap itself fires at ``at_s``.
        """
        if not self._multi:
            raise ConfigError(
                "reconfigure_tenant() needs a multi-tenant deployment; "
                "single-tenant modules reprogram through reboot()"
            )
        if at_s is not None and at_s < self.sim.now:
            raise ConfigError(
                f"cannot announce a reconfiguration in the past "
                f"(at_s={at_s}, now={self.sim.now})"
            )
        slot = self.tenant_slot(tenant)
        if bitstream is None:
            if app is None:
                raise ConfigError(
                    "reconfigure_tenant() needs a new app or bitstream"
                )
            from ..hls.compiler import compile_app  # deferred: cycle

            if slot.config.compiled:
                from ..hls.executor import compile_executor  # deferred: cycle

                bitstream = compile_executor(
                    app,
                    self.shell,
                    device=self.device,
                    flow_cache_entries=self._flow_cache_entries,
                ).build.bitstream
            else:
                bitstream = compile_app(
                    app,
                    self.shell,
                    self.device,
                    flow_cache_entries=self._flow_cache_entries
                    if slot.config.fastpath
                    else None,
                ).bitstream
        from ..apps import create_app  # deferred: avoids import cycle

        start = self.sim.now if at_s is None else at_s
        slot.dark_from = start
        slot.dark_until = start + RECONFIG_DOWNTIME_S
        if start > self.sim.now:
            self.sim.schedule_at(
                start, self._swap_tenant_slot, slot, bitstream, create_app
            )
        else:
            self._swap_tenant_slot(slot, bitstream, create_app)

    def _swap_tenant_slot(
        self,
        slot: TenantSlot,
        bitstream: Bitstream,
        app_factory: Callable[[str, dict], PPEApplication],
    ) -> None:
        slot.flash.store_bitstream(1, bitstream)
        slot.flash.select_boot(1)
        self._boot_tenant_slot(slot, app_factory)

    def _boot_tenant_slot(
        self,
        slot: TenantSlot,
        app_factory: Callable[[str, dict], PPEApplication],
    ) -> None:
        """Per-slot boot FSM: selected image, then the tenant's golden."""
        # An announced reconfiguration already registered this window (at
        # swap time ``now == dark_from``, so re-registering is idempotent);
        # un-announced paths (module reboot, direct swaps) register here.
        slot.dark_from = self.sim.now
        slot.dark_until = self.sim.now + RECONFIG_DOWNTIME_S
        booted: tuple[Bitstream, PPEApplication] | None = None
        candidates = [slot.flash.boot_slot]
        if slot.flash.boot_slot != 0:
            candidates.append(0)
        for index in candidates:
            try:
                bitstream = slot.flash.load_bitstream(index)
            except (FlashError, BitstreamError):
                slot.failed_boots += 1
                continue
            if bitstream.app_name == slot.app.name:
                booted = (bitstream, slot.app)  # same application: keep state
                break
            try:
                params = bitstream.metadata.get("app_params", {})
                booted = (bitstream, app_factory(bitstream.app_name, params))
                break
            except ConfigError:
                slot.failed_boots += 1
        if booted is None:
            # Both slot images unusable: this tenant degrades to
            # pass-through while every other slot keeps processing.
            slot.degraded = True
            slot.down = True
            self.sim.schedule(RECONFIG_DOWNTIME_S, slot.boot_complete)
            return
        bitstream, new_app = booted
        slot.degraded = False
        slot.app = new_app
        if slot.flow_cache is not None:
            slot.flow_cache.invalidate()
        if slot.program is not None:
            from ..hls.executor import compile_executor  # deferred: cycle

            slot.program = compile_executor(
                new_app,
                self.shell,
                device=self.device,
                flow_cache_entries=self._flow_cache_entries,
            ).program
        slot.ppe = PacketProcessingEngine(
            self.sim,
            new_app,
            bitstream.timing,
            device_id=self.device_id,
            batch_size=slot.config.batch_size,
            flow_cache=slot.flow_cache,
            program=slot.program,
        )
        slot.ppe.tracer = self._tracer
        slot.reboots += 1
        slot.down = True
        self.sim.schedule(RECONFIG_DOWNTIME_S, slot.boot_complete)

    def _enter_degraded(self) -> None:
        """Both boot images are unusable: degrade to a dumb cable.

        The fabric spends the usual reprogram window cycling through the
        slots, then the hardwired retimer path takes over.  The management
        endpoint stays reachable (it lives in the always-on configuration
        controller, like a real FPGA's system controller), so the fleet
        can push a fresh image and reboot the module out of degradation.
        """
        self.degraded = True
        self.control_plane.revive()
        self._down = True
        self.sim.schedule(RECONFIG_DOWNTIME_S, self._boot_complete)

    def _boot_complete(self) -> None:
        self._down = False

    @property
    def is_down(self) -> bool:
        return self._down

    # ------------------------------------------------------------------
    # Softcore watchdog (fault-injection surface)
    # ------------------------------------------------------------------
    def crash_softcore(self) -> None:
        """Wedge the control plane; the hardware watchdog reboots later."""
        self.control_plane.crash()
        self.sim.schedule(self.watchdog_timeout_s, self._watchdog_fire)

    def hang_softcore(self, duration_s: float) -> None:
        """Stall the control plane; it resumes on its own (no reboot)."""
        self.control_plane.hang(duration_s)

    def _watchdog_fire(self) -> None:
        if self.control_plane.crashed:
            self.watchdog_reboots += 1
            self.reboot()

    # ------------------------------------------------------------------
    # Introspection / observability
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Attach a packet tracer (duck-typed ``repro.obs.trace.Tracer``).

        The tracer admits packets at module ingress and receives stage
        spans (``mac.rx``, ``arbiter``, ``ppe``, ``app``, ``egress``) with
        virtual timestamps.  Passing None detaches.  The attachment
        survives reboots (the swapped-in engine inherits it).
        """
        self._tracer = tracer
        if self._multi:
            for slot in self.slots:
                slot.ppe.tracer = tracer
        else:
            self.ppe.tracer = tracer

    def register_metrics(self, registry) -> None:
        """Publish every sub-component into a ``MetricsRegistry``.

        Prefixes hang off the module name, e.g. ``module0.ppe.<app>...``,
        ``module0.edge.tx.packets``, ``module0.reboots``.  The PPE and
        control plane are registered through lambdas because reboots swap
        the live instances.
        """
        name = self.name
        registry.register(name, self)
        if self._multi:
            # Per-tenant isolation: every tenant's counters live under its
            # own ``<module>.tenant.<name>.*`` subtree, with the steering
            # decision itself observable at ``<module>.crossbar.*``.
            registry.register(f"{name}.crossbar", self.crossbar)
            for slot in self.slots:
                base = f"{name}.tenant.{slot.name}"
                registry.register(base, slot)
                registry.register(
                    f"{base}.ppe", (lambda s=slot: s.ppe.metric_values())
                )
                registry.register(
                    f"{base}.steered", self.crossbar.steered[slot.index]
                )
                registry.register(f"{base}.verdict_drops", slot.verdict_drops)
                registry.register(f"{base}.downtime_drops", slot.downtime_drops)
                registry.register(
                    f"{base}.degraded_forwarded", slot.degraded_forwarded
                )
        else:
            registry.register(f"{name}.ppe", lambda: self.ppe.metric_values())
        registry.register(f"{name}.edge", self.edge_port)
        registry.register(f"{name}.line", self.line_port)
        if self.mgmt_port is not None:
            registry.register(f"{name}.mgmt", self.mgmt_port)
        registry.register(f"{name}.verdict_drops", self.verdict_drops)
        registry.register(f"{name}.downtime_drops", self.downtime_drops)
        registry.register(f"{name}.degraded_forwarded", self.degraded_forwarded)
        registry.register(
            f"{name}.control_plane",
            lambda: self.control_plane.metric_values(),
        )

    def metric_values(self) -> dict[str, object]:
        """Flat :class:`~repro.obs.registry.MetricSource` view (module level)."""
        values: dict[str, object] = {
            "app": self.app.name,
            "shell": self.shell.kind.value,
            "reboots": self.reboots,
            "failed_boots": self.failed_boots,
            "watchdog_reboots": self.watchdog_reboots,
            "degraded": self.degraded,
            "down": self._down,
            "boot_slot": self.flash.boot_slot,
            "control_fraction": self.arbiter.control_fraction(),
        }
        if self._multi:
            values["app"] = "+".join(
                f"{slot.name}:{slot.app.name}" for slot in self.slots
            )
            values["tenants"] = len(self.slots)
        return values

    def histogram_states(self) -> dict[str, object]:
        """Live latency histograms keyed by full metric name.

        Single-tenant modules keep the historical
        ``<module>.ppe.<app>.latency_ns`` key; multi-tenant modules
        publish one histogram per tenant under its isolation subtree.
        """
        if self._multi:
            return {
                f"{self.name}.tenant.{slot.name}.ppe."
                f"{slot.app.name}.latency_ns": slot.ppe.latency_ns
                for slot in self.slots
            }
        return {f"{self.name}.ppe.{self.app.name}.latency_ns": self.ppe.latency_ns}

    def snapshot(self) -> dict[str, object]:
        """Structured counter snapshot (stable legacy dict layout)."""
        if self._multi:
            return {
                "app": "+".join(
                    f"{slot.name}:{slot.app.name}" for slot in self.slots
                ),
                "shell": self.shell.kind.value,
                "tenants": {
                    slot.name: {
                        "app": slot.app.name,
                        "ppe": slot.ppe.snapshot(),
                        "steered": self.crossbar.steered[slot.index].snapshot(),
                        "verdict_drops": slot.verdict_drops.snapshot(),
                        "downtime_drops": slot.downtime_drops.snapshot(),
                        "reboots": slot.reboots,
                        "failed_boots": slot.failed_boots,
                        "degraded": slot.degraded,
                        "boot_slot": slot.flash.boot_slot,
                    }
                    for slot in self.slots
                },
                "verdict_drops": self.verdict_drops.snapshot(),
                "downtime_drops": self.downtime_drops.snapshot(),
                "control_plane": self.control_plane.snapshot(),
                "control_fraction": self.arbiter.control_fraction(),
                "reboots": self.reboots,
                "failed_boots": self.failed_boots,
                "degraded": self.degraded,
                "degraded_forwarded": self.degraded_forwarded.snapshot(),
                "boot_slot": self.flash.boot_slot,
                "watchdog_reboots": self.watchdog_reboots,
            }
        return {
            "app": self.app.name,
            "shell": self.shell.kind.value,
            "ppe": self.ppe.snapshot(),
            "verdict_drops": self.verdict_drops.snapshot(),
            "downtime_drops": self.downtime_drops.snapshot(),
            "control_plane": self.control_plane.snapshot(),
            "control_fraction": self.arbiter.control_fraction(),
            "reboots": self.reboots,
            "failed_boots": self.failed_boots,
            "degraded": self.degraded,
            "degraded_forwarded": self.degraded_forwarded.snapshot(),
            "boot_slot": self.flash.boot_slot,
            "watchdog_reboots": self.watchdog_reboots,
        }

    def stats(self) -> dict[str, object]:
        """Deprecated alias for :meth:`snapshot`."""
        warn_deprecated("FlexSFPModule.stats()", "FlexSFPModule.snapshot()")
        return self.snapshot()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FlexSFPModule {self.name}: {self.app.name} on {self.device.name} "
            f"({self.shell.kind.value})>"
        )
