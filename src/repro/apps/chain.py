"""Application composition: several functions in one PPE (§5.3).

"FlexSFP targets composed L2-L4 functions — multi-field parse/edit,
label/tunnel manipulation, per-packet hashing for steering, and in-band
timestamping/telemetry — executed at the optical boundary."

:class:`AppChain` is the composition operator: it runs member
applications in order (first non-PASS verdict wins, like a match-action
chain), exposes every member's tables under prefixed names, and lowers to
a *single* pipeline — one shared parser/deparser/buffer sized for the
deepest member, with the members' match-action stages concatenated and
the build-flow optimizer's fusion rules applied.  Composing in one PPE is
cheaper than cabling modules in series: the shared shell, parser, and
buffer are paid once (the same argument the Two-Way-Core makes for
sharing across directions).
"""

from __future__ import annotations

from ..core.ppe import PPEApplication, PPEContext, Verdict
from ..core.tables import Table, TableRegistry
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import Packet

# Stage kinds that belong to the shared shell, not to any one member.
_SHARED_KINDS = frozenset({StageKind.PARSER, StageKind.DEPARSER, StageKind.FIFO})


class AppChain(PPEApplication):
    """Sequential composition of PPE applications."""

    name = "chain"

    def __init__(self, apps: list[PPEApplication], name: str = "chain") -> None:
        super().__init__()
        if not apps:
            raise ConfigError("a chain needs at least one application")
        names = [app.name for app in apps]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate application names in chain: {names}")
        self.name = name
        self.apps = list(apps)
        # Re-export member tables under prefixed names so the control
        # plane can address them without collisions.
        self.tables = TableRegistry()
        for app in self.apps:
            for table_name in app.tables.names():
                table = app.tables.get(table_name)
                self.tables.register(_PrefixedTable(f"{app.name}.{table_name}", table))

    # ------------------------------------------------------------------
    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        for app in self.apps:
            verdict = app.process(packet, ctx)
            if verdict is not Verdict.PASS:
                self.counter(f"stopped_by_{app.name}").count(packet.wire_len)
                return verdict
        self.counter("passed").count(packet.wire_len)
        return Verdict.PASS

    # ------------------------------------------------------------------
    def pipeline_spec(self) -> PipelineSpec:
        """One fused pipeline: shared shell stages, concatenated chains."""
        from ..hls.passes import optimize  # deferred: avoid import cycle

        member_specs = [app.pipeline_spec() for app in self.apps]
        max_parser = 14
        max_fifo_depth = 2 * 1518
        max_fifo_meta = 64
        middle: list[Stage] = []
        for app, spec in zip(self.apps, member_specs):
            for stage in spec.stages:
                if stage.kind is StageKind.PARSER:
                    max_parser = max(max_parser, stage.param("header_bytes"))
                elif stage.kind is StageKind.FIFO:
                    max_fifo_depth = max(max_fifo_depth, stage.param("depth_bytes"))
                    max_fifo_meta = max(
                        max_fifo_meta, int(stage.params.get("metadata_bits", 0))
                    )
                elif stage.kind is StageKind.DEPARSER:
                    continue
                else:
                    middle.append(
                        Stage(
                            name=f"{app.name}.{stage.name}",
                            kind=stage.kind,
                            params=dict(stage.params),
                        )
                    )
        stages = (
            [Stage("parse", StageKind.PARSER, {"header_bytes": max_parser})]
            + middle
            + [
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {
                        "depth_bytes": max_fifo_depth,
                        "metadata_bits": max_fifo_meta,
                        "metadata_entries": 16,
                    },
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": max_parser}),
            ]
        )
        fused = PipelineSpec(
            name=self.name,
            stages=stages,
            description="composed: " + " -> ".join(a.name for a in self.apps),
        )
        optimized, _ = optimize(fused)
        return optimized

    def counters_snapshot(self) -> dict[str, dict[str, int]]:
        merged = {name: c.snapshot() for name, c in self.counters.items()}
        for app in self.apps:
            for name, snap in app.counters_snapshot().items():
                merged[f"{app.name}.{name}"] = snap
        return merged

    def config(self) -> dict:
        # Chains are built programmatically: the bitstream records the
        # member list for inspection, but (like custom XDP programs) a
        # chain is not reconstructible from metadata — a reboot into a
        # chain image on a module that lost the object falls back to the
        # running app (see FlexSFPModule.reboot's watchdog behaviour).
        return {
            "members": [app.name for app in self.apps],
            "reconstructible": False,
        }


class _PrefixedTable(Table):
    """A view of a member's table under a prefixed name."""

    def __init__(self, name: str, inner: Table) -> None:
        # Intentionally skip Table.__init__: this is a delegating view.
        self.name = name
        self._inner = inner
        self.kind = inner.kind

    @property
    def capacity(self) -> int:  # type: ignore[override]
        return self._inner.capacity

    @property
    def generation(self) -> int:  # type: ignore[override]
        return self._inner.generation

    def __len__(self) -> int:
        return len(self._inner)

    def lookup(self, key):
        return self._inner.lookup(key)

    def insert(self, *args, **kwargs):
        return self._inner.insert(*args, **kwargs)

    def delete(self, *args, **kwargs):
        return self._inner.delete(*args, **kwargs)

    def stats(self) -> dict[str, int]:
        return self._inner.stats()

    def __getattr__(self, item):
        return getattr(self._inner, item)
