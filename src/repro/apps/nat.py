"""The paper's case study: a simple static one-to-one NAT (§5.1).

Translates source IPv4 addresses for outgoing (edge→line) traffic via a
32 768-entry exact-match table keyed by the original source address, with
incremental IPv4/L4 checksum updates.  In Two-Way-Core shells the reverse
direction untranslates destination addresses using the inverse mapping, so
return traffic reaches the original host.

The pipeline spec reproduces the Table 1 "NAT app" row: parser (Ethernet +
IPv4), hash + exact table sized at 32 768 × (32-bit key → 64-bit value)
⇒ 160 LSRAM blocks, a 32-bit rewrite action, the RFC 1624 checksum unit,
a two-frame store-and-forward buffer (36 uSRAM with metadata), and the
deparser.
"""

from __future__ import annotations

from .._util import int_to_ip, ip_to_int
from ..core.flowcache import FlowRecipe
from ..core.ppe import Direction, PPEApplication, PPEContext, Verdict
from ..core.tables import ExactTable
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import Packet

PAPER_NAT_FLOWS = 32_768


class StaticNat(PPEApplication):
    """One-to-one source-IP NAT at the optical edge.

    Parameters
    ----------
    capacity:
        Maximum translations (the prototype stores 32 768 flows).
    translate_reverse:
        Also rewrite destination addresses of line→edge traffic using the
        inverse mapping (needed when deployed in a Two-Way-Core shell).
    miss_action:
        ``"pass"`` (default: forward untranslated, the paper's stateless
        behaviour) or ``"drop"``.
    """

    name = "nat"

    def __init__(
        self,
        capacity: int = PAPER_NAT_FLOWS,
        translate_reverse: bool = True,
        miss_action: str = "pass",
    ) -> None:
        super().__init__()
        if miss_action not in ("pass", "drop"):
            raise ConfigError(f"unknown miss_action {miss_action!r}")
        self.capacity = capacity
        self.translate_reverse = translate_reverse
        self.miss_action = miss_action
        self.nat_table: ExactTable[int, int] = ExactTable("nat", capacity)
        self.reverse_table: ExactTable[int, int] = ExactTable("nat_reverse", capacity)
        self.tables.register(self.nat_table)
        self.tables.register(self.reverse_table)

    # ------------------------------------------------------------------
    # Mapping management (used directly and via the control plane)
    # ------------------------------------------------------------------
    def add_mapping(self, original: str | int, translated: str | int) -> None:
        """Install ``original -> translated`` plus the inverse entry."""
        orig, trans = ip_to_int(original), ip_to_int(translated)
        self.nat_table.insert(orig, trans)
        self.reverse_table.insert(trans, orig)

    def remove_mapping(self, original: str | int) -> None:
        orig = ip_to_int(original)
        translated = self.nat_table.lookup(orig)
        self.nat_table.delete(orig)
        if translated is not None:
            self.reverse_table.delete(translated)

    def mapping_of(self, original: str | int) -> str | None:
        translated = self.nat_table.lookup(ip_to_int(original))
        return None if translated is None else int_to_ip(translated)

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        ip = packet.ipv4
        if ip is None:
            self.counter("non_ip").count(packet.wire_len)
            return Verdict.PASS
        if ctx.direction is Direction.EDGE_TO_LINE:
            translated = self.nat_table.lookup(ip.src)
            if translated is None:
                self.counter("miss").count(packet.wire_len)
                return Verdict.DROP if self.miss_action == "drop" else Verdict.PASS
            ip.src = translated
            self.counter("translated").count(packet.wire_len)
            return Verdict.PASS
        if self.translate_reverse:
            original = self.reverse_table.lookup(ip.dst)
            if original is not None:
                ip.dst = original
                self.counter("untranslated").count(packet.wire_len)
        return Verdict.PASS

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def flow_key(self, packet: Packet):
        ip = packet.ipv4
        if ip is None:
            return None  # non-IP handling is trivial; not worth a cache slot
        return (ip.src, ip.dst)

    def decide(self, packet: Packet, ctx: PPEContext) -> FlowRecipe | None:
        ip = packet.ipv4
        assert ip is not None  # flow_key gated
        if ctx.direction is Direction.EDGE_TO_LINE:
            translated = self.nat_table.lookup(ip.src)
            if translated is None:
                verdict = (
                    Verdict.DROP if self.miss_action == "drop" else Verdict.PASS
                )
                return FlowRecipe(verdict, counters=("miss",))
            return FlowRecipe(
                Verdict.PASS,
                mutations=(("ipv4", "src", translated),),
                counters=("translated",),
            )
        if self.translate_reverse:
            original = self.reverse_table.lookup(ip.dst)
            if original is not None:
                return FlowRecipe(
                    Verdict.PASS,
                    mutations=(("ipv4", "dst", original),),
                    counters=("untranslated",),
                )
        return FlowRecipe(Verdict.PASS)

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------
    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="static 1:1 source NAT (paper §5.1 case study)",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 34}),
                Stage(
                    "nat_lookup",
                    StageKind.EXACT_TABLE,
                    {"entries": self.capacity, "key_bits": 32, "value_bits": 64},
                ),
                Stage("rewrite", StageKind.ACTION, {"rewrite_bits": 32}),
                Stage("csum", StageKind.CHECKSUM, {}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {
                        "depth_bytes": 2 * 1518,
                        "metadata_bits": 192,
                        "metadata_entries": 16,
                    },
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 34}),
            ],
        )

    def config(self) -> dict:
        return {
            "capacity": self.capacity,
            "translate_reverse": self.translate_reverse,
            "miss_action": self.miss_action,
        }
