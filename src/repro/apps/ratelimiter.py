"""In-line rate limiting: per-source token buckets (§3, Nimble-style).

"Inline security use cases may also include … rate-limiting traffic from
selected sources."  Each configured source prefix gets a token bucket
refilled at its committed rate; conforming packets pass, excess traffic is
dropped at the optical edge before it consumes any downstream capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import ip_to_int
from ..core.ppe import PPEApplication, PPEContext, Verdict
from ..core.tables import LPMTable
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import Packet


@dataclass
class TokenBucket:
    """A token bucket metered in bytes.

    ``rate_bps`` is the committed information rate; ``burst_bytes`` the
    bucket depth.  Refill is computed lazily from elapsed time, exactly as
    a hardware meter does with a timestamp delta.
    """

    rate_bps: float
    burst_bytes: int
    tokens: float = 0.0
    last_refill_ns: int = 0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0 or self.burst_bytes <= 0:
            raise ConfigError("token bucket needs positive rate and burst")
        self.tokens = float(self.burst_bytes)

    def conforms(self, num_bytes: int, now_ns: int) -> bool:
        """Refill, then try to debit ``num_bytes``; True when conforming."""
        elapsed_s = max(0, now_ns - self.last_refill_ns) / 1e9
        self.tokens = min(
            float(self.burst_bytes), self.tokens + elapsed_s * self.rate_bps / 8
        )
        self.last_refill_ns = now_ns
        if self.tokens >= num_bytes:
            self.tokens -= num_bytes
            return True
        return False


class RateLimiter(PPEApplication):
    """Per-source-prefix policing."""

    name = "ratelimiter"

    def __init__(self, capacity: int = 1024, default_permit: bool = True) -> None:
        super().__init__()
        self.capacity = capacity
        self.default_permit = default_permit
        self.meters: LPMTable[TokenBucket] = LPMTable(
            "meters", capacity, key_bits=32
        )
        self.tables.register(self.meters)

    def add_limit(
        self, prefix: str, prefix_len: int, rate_bps: float, burst_bytes: int
    ) -> None:
        """Police ``prefix/len`` to ``rate_bps`` with the given burst."""
        self.meters.insert(
            ip_to_int(prefix),
            prefix_len,
            TokenBucket(rate_bps=rate_bps, burst_bytes=burst_bytes),
        )

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        ip = packet.ipv4
        if ip is None:
            return Verdict.PASS if self.default_permit else Verdict.DROP
        bucket = self.meters.lookup(ip.src)
        if bucket is None:
            self.counter("unmetered").count(packet.wire_len)
            return Verdict.PASS if self.default_permit else Verdict.DROP
        if bucket.conforms(packet.wire_len, ctx.time_ns):
            self.counter("conformed").count(packet.wire_len)
            return Verdict.PASS
        self.counter("policed").count(packet.wire_len)
        return Verdict.DROP

    def flow_key(self, packet: Packet) -> None:
        """Never cacheable: token buckets are time-varying state.

        The same flow conforms now and is policed a microsecond later, so
        no :class:`~repro.core.flowcache.FlowRecipe` can replay the
        decision.  Explicit override to document the opt-out.
        """
        return None

    def burst_plan(self, template: Packet, direction):
        """Sequential meter replay for the compiled engine's meter lane.

        A cached :class:`~repro.core.flowcache.FlowRecipe` can never
        replay a policing decision (the same flow conforms now and is
        policed a microsecond later), but the decision *is* a pure
        function of the arrival times and sizes the engine already
        knows.  The returned plan debits the bucket once per frame in
        arrival order — bit-identical to per-frame :meth:`process` —
        and hands back contiguous verdict runs for aggregate delivery.
        """
        ip = template.ipv4
        permit = Verdict.PASS if self.default_permit else Verdict.DROP
        if ip is None:

            def plan_non_ip(times_ns: list[int], size: int):
                return [(permit, len(times_ns))]

            return plan_non_ip
        src = ip.src

        def plan(times_ns: list[int], size: int):
            bucket = self.meters.lookup(src)
            n = len(times_ns)
            if bucket is None:
                counter = self.counter("unmetered")
                counter.packets += n
                counter.bytes += n * size
                return [(permit, n)]
            conformed = self.counter("conformed")
            policed = self.counter("policed")
            runs: list[tuple[Verdict, int]] = []
            for now_ns in times_ns:
                if bucket.conforms(size, now_ns):
                    verdict = Verdict.PASS
                    conformed.packets += 1
                    conformed.bytes += size
                else:
                    verdict = Verdict.DROP
                    policed.packets += 1
                    policed.bytes += size
                if runs and runs[-1][0] is verdict:
                    runs[-1] = (verdict, runs[-1][1] + 1)
                else:
                    runs.append((verdict, 1))
            return runs

        return plan

    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="per-source token-bucket policer",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 34}),
                Stage(
                    "classify",
                    StageKind.LPM_TABLE,
                    {"entries": self.capacity, "key_bits": 32, "value_bits": 16},
                ),
                Stage("meter", StageKind.METERS, {"meters": self.capacity}),
                Stage("ts", StageKind.TIMESTAMP, {}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1518, "metadata_bits": 128},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 34}),
            ],
        )

    def config(self) -> dict:
        return {"capacity": self.capacity, "default_permit": self.default_permit}
