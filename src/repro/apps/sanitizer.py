"""Packet sanitization and protocol validation (§3).

"Inline security use cases may also include packet sanitization and
protocol validation, such as removing deprecated headers, blocking
malformed packets…"  The sanitizer screens traffic before it reaches the
NIC or switch: invalid checksums, expired TTLs, martian sources, runt
payloads, and (optionally) deprecated IPv4 options are dropped or
stripped at the optical edge.
"""

from __future__ import annotations

from .._util import ip_to_int
from ..core.ppe import PPEApplication, PPEContext, Verdict
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import IPv4, Packet, UDP

# Default martian source prefixes: (prefix, length).
DEFAULT_MARTIANS = (
    ("0.0.0.0", 8),
    ("127.0.0.0", 8),
    ("240.0.0.0", 4),
)


class PacketSanitizer(PPEApplication):
    """Stateless protocol validation and header hygiene."""

    name = "sanitizer"

    def __init__(
        self,
        verify_checksums: bool = True,
        drop_expired_ttl: bool = True,
        drop_martians: bool = True,
        strip_ipv4_options: bool = True,
        min_udp_payload: int = 0,
        martians: tuple[tuple[str, int], ...] = DEFAULT_MARTIANS,
    ) -> None:
        super().__init__()
        self.verify_checksums = verify_checksums
        self.drop_expired_ttl = drop_expired_ttl
        self.drop_martians = drop_martians
        self.strip_ipv4_options = strip_ipv4_options
        self.min_udp_payload = min_udp_payload
        self._martians = [
            (ip_to_int(prefix) >> (32 - length), length) for prefix, length in martians
        ]

    def _is_martian(self, src: int) -> bool:
        return any(src >> (32 - length) == prefix for prefix, length in self._martians)

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        ip = packet.ipv4
        if ip is None:
            return Verdict.PASS
        if self.verify_checksums and ip.checksum and not ip.verify_checksum():
            self.counter("bad_checksum").count(packet.wire_len)
            return Verdict.DROP
        if self.drop_expired_ttl and ip.ttl == 0:
            self.counter("expired_ttl").count(packet.wire_len)
            return Verdict.DROP
        if self.drop_martians and self._is_martian(ip.src):
            self.counter("martian").count(packet.wire_len)
            return Verdict.DROP
        udp = packet.get(UDP)
        if udp is not None and len(packet.payload) < self.min_udp_payload:
            self.counter("runt_payload").count(packet.wire_len)
            return Verdict.DROP
        if self.strip_ipv4_options and ip.options:
            # Deprecated header removal: clear options, checksum refreshed
            # at serialization (incremental update in hardware).
            ip.options = b""
            self.counter("options_stripped").count(packet.wire_len)
        self.counter("clean").count(packet.wire_len)
        return Verdict.PASS

    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="packet sanitization / protocol validation",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 74}),
                Stage("validate", StageKind.ACTION, {"rewrite_bits": 40 * 8}),
                Stage("csum", StageKind.CHECKSUM, {}),
                Stage("stats", StageKind.COUNTERS, {"counters": 16}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1518, "metadata_bits": 128},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 74}),
            ],
        )

    def config(self) -> dict:
        return {
            "verify_checksums": self.verify_checksums,
            "drop_expired_ttl": self.drop_expired_ttl,
            "drop_martians": self.drop_martians,
            "strip_ipv4_options": self.strip_ipv4_options,
            "min_udp_payload": self.min_udp_payload,
        }


class Passthrough(PPEApplication):
    """A no-op application: the baseline for latency/power comparisons."""

    name = "passthrough"

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        self.counter("passed").count(packet.wire_len)
        return Verdict.PASS

    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="transparent forwarder",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 14}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1518, "metadata_bits": 64},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 14}),
            ],
        )
