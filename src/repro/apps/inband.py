"""In-band network telemetry: INT source / transit / sink roles (§3).

"A FlexSFP could … insert lightweight metadata for in-band measurements,
similar to what has been demonstrated in in-band network telemetry (INT)."
Three deployable roles share one application class:

* ``source`` — inserts the INT shim after Ethernet and pushes this hop.
* ``transit`` — pushes a hop record onto packets that already carry a shim.
* ``sink`` — pops the shim, restores the original EtherType, and exports
  the collected hop stack to a collector via ``ctx.emit``.
"""

from __future__ import annotations

import struct

from ..core.ppe import PPEApplication, PPEContext, Verdict
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import (
    EtherType,
    INTHop,
    INTShim,
    Packet,
    UDPPort,
    make_udp,
)

ROLES = ("source", "transit", "sink")

_REPORT_HEADER = struct.Struct("!HHI")  # version, hop_count, device_id
REPORT_VERSION = 1


def pack_report(device_id: int, hops: list[INTHop]) -> bytes:
    """Serialize a sink report datagram."""
    return _REPORT_HEADER.pack(REPORT_VERSION, len(hops), device_id) + b"".join(
        hop.pack() for hop in hops
    )


def unpack_report(payload: bytes) -> tuple[int, list[INTHop]]:
    """Inverse of :func:`pack_report`: (device_id, hops)."""
    version, count, device_id = _REPORT_HEADER.unpack_from(payload, 0)
    if version != REPORT_VERSION:
        raise ConfigError(f"unknown INT report version {version}")
    hops = [
        INTHop.unpack_from(memoryview(payload), _REPORT_HEADER.size + i * INTHop.WIRE_LEN)
        for i in range(count)
    ]
    return device_id, hops


class InbandTelemetry(PPEApplication):
    """INT source/transit/sink packet function."""

    name = "int"

    def __init__(
        self,
        role: str = "source",
        max_hops: int = 8,
        collector_ip: str = "203.0.113.10",
        exporter_ip: str = "203.0.113.2",
        only_direction: str | None = "edge->line",
    ) -> None:
        super().__init__()
        if role not in ROLES:
            raise ConfigError(f"unknown INT role {role!r}; pick from {ROLES}")
        self.role = role
        self.max_hops = max_hops
        self.collector_ip = collector_ip
        self.exporter_ip = exporter_ip
        self.only_direction = only_direction
        self.reports_sent = 0

    def _applies(self, ctx: PPEContext) -> bool:
        return (
            self.only_direction is None
            or ctx.direction.value == self.only_direction
        )

    def _hop(self, ctx: PPEContext) -> INTHop:
        ingress_ns = ctx.time_ns
        return INTHop(
            device_id=ctx.device_id,
            queue_depth=min(ctx.queue_depth, 0xFFFF),
            latency_ns=0,
            ingress_ts_ns=ingress_ns,
        )

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        if not self._applies(ctx):
            return Verdict.PASS
        if self.role == "source":
            return self._source(packet, ctx)
        if self.role == "transit":
            return self._transit(packet, ctx)
        return self._sink(packet, ctx)

    def _source(self, packet: Packet, ctx: PPEContext) -> Verdict:
        eth = packet.eth
        if eth is None or packet.get(INTShim) is not None:
            return Verdict.PASS
        shim = INTShim(next_ethertype=eth.ethertype, max_hops=self.max_hops)
        shim.push_hop(self._hop(ctx))
        eth.ethertype = EtherType.INT_SHIM
        packet.insert_after(eth, shim)
        self.counter("inserted").count(packet.wire_len)
        return Verdict.PASS

    def _transit(self, packet: Packet, ctx: PPEContext) -> Verdict:
        shim = packet.get(INTShim)
        if shim is None:
            return Verdict.PASS
        if shim.push_hop(self._hop(ctx)):
            self.counter("pushed").count(packet.wire_len)
        else:
            self.counter("stack_full").count(packet.wire_len)
        return Verdict.PASS

    def _sink(self, packet: Packet, ctx: PPEContext) -> Verdict:
        shim = packet.get(INTShim)
        eth = packet.eth
        if shim is None or eth is None:
            return Verdict.PASS
        hops = list(shim.hops)
        eth.ethertype = shim.next_ethertype
        packet.remove(shim)
        report = make_udp(
            src_ip=self.exporter_ip,
            dst_ip=self.collector_ip,
            sport=UDPPort.INT_COLLECTOR,
            dport=UDPPort.INT_COLLECTOR,
            payload=pack_report(ctx.device_id, hops),
        )
        # The report follows the monitored traffic so it reaches the
        # collector behind the sink's egress side.
        ctx.emit(report, ctx.direction)
        self.reports_sent += 1
        self.counter("terminated").count(packet.wire_len)
        return Verdict.PASS

    def pipeline_spec(self) -> PipelineSpec:
        # Shim insertion/removal rewrites 4 B shim + 16 B hop + ethertype.
        return PipelineSpec(
            name=self.name,
            description=f"in-band telemetry ({self.role})",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 54}),
                Stage("ts", StageKind.TIMESTAMP, {}),
                Stage("edit", StageKind.ACTION, {"rewrite_bits": (4 + 16) * 8 + 16}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1538, "metadata_bits": 128},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 54}),
            ],
        )

    def config(self) -> dict:
        return {
            "role": self.role,
            "max_hops": self.max_hops,
            "collector_ip": self.collector_ip,
            "exporter_ip": self.exporter_ip,
            "only_direction": self.only_direction,
        }
