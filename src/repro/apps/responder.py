"""Punt-to-CPU classifier: the datapath half of the microservice node.

The PPE stays dumb and fast: it forwards everything except the low-rate
protocol traffic the control-plane services own (ARP requests, ICMP echo
to the module's own address), which it punts with ``Verdict.TO_CPU``.
Paired with :mod:`repro.core.services`, this turns an Active-Control-Plane
FlexSFP into an addressable in-cable endpoint.
"""

from __future__ import annotations

from .._util import ip_to_int
from ..core.ppe import PPEApplication, PPEContext, Verdict
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import ARP, ICMP, Packet


class CpuPunt(PPEApplication):
    """Forwarding app that punts protocol chores to the embedded CPU."""

    name = "punt"

    def __init__(
        self,
        owned_ips: list[str] | None = None,
        punt_arp: bool = True,
        punt_icmp_echo: bool = True,
    ) -> None:
        super().__init__()
        self.owned_ips = list(owned_ips or [])
        self._owned = {ip_to_int(ip) for ip in self.owned_ips}
        self.punt_arp = punt_arp
        self.punt_icmp_echo = punt_icmp_echo

    def add_owned_ip(self, ip: str) -> None:
        self.owned_ips.append(ip)
        self._owned.add(ip_to_int(ip))

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        if self.punt_arp:
            arp = packet.get(ARP)
            if arp is not None and (
                not self._owned or arp.target_ip in self._owned
            ):
                self.counter("punted_arp").count(packet.wire_len)
                return Verdict.TO_CPU
        if self.punt_icmp_echo and packet.get(ICMP) is not None:
            ip = packet.ipv4
            if ip is not None and ip.dst in self._owned:
                self.counter("punted_icmp").count(packet.wire_len)
                return Verdict.TO_CPU
        self.counter("forwarded").count(packet.wire_len)
        return Verdict.PASS

    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="protocol punt classifier for CP microservices",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 42}),
                Stage(
                    "owned",
                    StageKind.EXACT_TABLE,
                    {"entries": 64, "key_bits": 32, "value_bits": 8},
                ),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1518, "metadata_bits": 64},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 42}),
            ],
        )

    def config(self) -> dict:
        return {
            "owned_ips": self.owned_ips,
            "punt_arp": self.punt_arp,
            "punt_icmp_echo": self.punt_icmp_echo,
        }
