"""PPE applications: the paper's §3 use-case spectrum, runnable + buildable.

Every application here is both a functional packet program (executed by the
simulated PPE) and a synthesizable design (priced by the build flow).  The
registry at the bottom lets the module reconstruct applications from
bitstream metadata after an over-the-network reconfiguration.
"""

from typing import Callable

from ..core.ppe import PPEApplication
from ..errors import ConfigError
from .chain import AppChain
from .dnsfilter import DnsFilter, domain_suffixes
from .firewall import AclFirewall, AclRule, five_tuple_key
from .inband import InbandTelemetry, pack_report, unpack_report
from .ipv6filter import Ipv6Filter
from .linkhealth import LinkEvent, LinkHealthMonitor, pack_alert, unpack_alert
from .loadbalancer import Backend, L4LoadBalancer, flow_hash
from .nat import PAPER_NAT_FLOWS, StaticNat
from .ratelimiter import RateLimiter, TokenBucket
from .responder import CpuPunt
from .sanitizer import PacketSanitizer, Passthrough
from .telemetry import FlowRecord, FlowTelemetry, pack_records, unpack_records
from .tunnel import TunnelGateway, TunnelRoute
from .vlan import VlanTagger

APP_FACTORIES: dict[str, Callable[..., PPEApplication]] = {
    "nat": StaticNat,
    "firewall": AclFirewall,
    "vlan": VlanTagger,
    "tunnel": TunnelGateway,
    "loadbalancer": L4LoadBalancer,
    "ratelimiter": RateLimiter,
    "telemetry": FlowTelemetry,
    "int": InbandTelemetry,
    "linkhealth": LinkHealthMonitor,
    "dnsfilter": DnsFilter,
    "ipv6filter": Ipv6Filter,
    "punt": CpuPunt,
    "sanitizer": PacketSanitizer,
    "passthrough": Passthrough,
}


def create_app(name: str, params: dict | None = None) -> PPEApplication:
    """Instantiate a registered application from bitstream metadata."""
    factory = APP_FACTORIES.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown application {name!r}; registered: {sorted(APP_FACTORIES)}"
        )
    return factory(**(params or {}))


__all__ = [
    "APP_FACTORIES",
    "AclFirewall",
    "AclRule",
    "AppChain",
    "Backend",
    "CpuPunt",
    "DnsFilter",
    "FlowRecord",
    "FlowTelemetry",
    "InbandTelemetry",
    "Ipv6Filter",
    "L4LoadBalancer",
    "LinkEvent",
    "LinkHealthMonitor",
    "PAPER_NAT_FLOWS",
    "PacketSanitizer",
    "Passthrough",
    "RateLimiter",
    "StaticNat",
    "TokenBucket",
    "TunnelGateway",
    "TunnelRoute",
    "VlanTagger",
    "create_app",
    "domain_suffixes",
    "five_tuple_key",
    "flow_hash",
    "pack_alert",
    "pack_records",
    "pack_report",
    "unpack_alert",
    "unpack_records",
    "unpack_report",
]
