"""NetFlow-like in-line flow telemetry (§3, Monitoring & Observability).

"A FlexSFP could export NetFlow-like stats … without incurring high
overhead."  The application keeps a bounded flow cache keyed by 5-tuple,
optionally samples 1-in-N packets, and periodically exports expired
records as compact binary UDP datagrams toward a collector — originated by
the PPE itself via ``ctx.emit`` (the SFP becomes a telemetry source, not
just a forwarder).

Export record wire format (big-endian, 32 bytes per record)::

    src(4) dst(4) proto(1) pad(1) sport(2) dport(2) pad(2)
    packets(4) bytes(4) first_ns_lo(4) last_ns_lo(4)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..core.ppe import Direction, PPEApplication, PPEContext, Verdict
from ..core.tables import ExactTable
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import Packet, UDPPort, make_udp

_RECORD = struct.Struct("!4s4sBxHHxxIIII")
_EXPORT_HEADER = struct.Struct("!HHIQ")  # version, count, device_id, ts_ns
EXPORT_VERSION = 5
RECORD_BYTES = _RECORD.size


@dataclass
class FlowRecord:
    """Accumulated statistics for one flow."""

    packets: int = 0
    bytes: int = 0
    first_ns: int = 0
    last_ns: int = 0

    def update(self, num_bytes: int, now_ns: int) -> None:
        if self.packets == 0:
            self.first_ns = now_ns
        self.packets += 1
        self.bytes += num_bytes
        self.last_ns = now_ns


def pack_records(
    records: list[tuple[tuple[int, int, int, int, int], FlowRecord]],
    device_id: int,
    now_ns: int,
) -> bytes:
    """Serialize an export datagram."""
    body = _EXPORT_HEADER.pack(EXPORT_VERSION, len(records), device_id, now_ns)
    for (src, dst, proto, sport, dport), record in records:
        body += _RECORD.pack(
            src.to_bytes(4, "big"),
            dst.to_bytes(4, "big"),
            proto,
            sport,
            dport,
            record.packets,
            record.bytes & 0xFFFFFFFF,
            record.first_ns & 0xFFFFFFFF,
            record.last_ns & 0xFFFFFFFF,
        )
    return body


def unpack_records(
    payload: bytes,
) -> tuple[int, int, list[tuple[tuple[int, int, int, int, int], FlowRecord]]]:
    """Inverse of :func:`pack_records`: (device_id, ts_ns, records)."""
    version, count, device_id, ts_ns = _EXPORT_HEADER.unpack_from(payload, 0)
    if version != EXPORT_VERSION:
        raise ConfigError(f"unknown telemetry export version {version}")
    records = []
    offset = _EXPORT_HEADER.size
    for _ in range(count):
        src, dst, proto, sport, dport, pkts, nbytes, first, last = _RECORD.unpack_from(
            payload, offset
        )
        offset += RECORD_BYTES
        key = (
            int.from_bytes(src, "big"),
            int.from_bytes(dst, "big"),
            proto,
            sport,
            dport,
        )
        records.append(
            (key, FlowRecord(packets=pkts, bytes=nbytes, first_ns=first, last_ns=last))
        )
    return device_id, ts_ns, records


class FlowTelemetry(PPEApplication):
    """Flow accounting with inline export."""

    name = "telemetry"

    def __init__(
        self,
        capacity: int = 4096,
        sample_rate: int = 1,
        export_interval_ns: int = 1_000_000_000,
        collector_ip: str = "203.0.113.10",
        exporter_ip: str = "203.0.113.1",
        max_records_per_export: int = 30,
    ) -> None:
        super().__init__()
        if sample_rate < 1:
            raise ConfigError("sample_rate must be >= 1 (1 = every packet)")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self.export_interval_ns = export_interval_ns
        self.collector_ip = collector_ip
        self.exporter_ip = exporter_ip
        self.max_records_per_export = max_records_per_export
        self.flows: ExactTable[tuple[int, int, int, int, int], FlowRecord] = ExactTable(
            "flows", capacity
        )
        self.tables.register(self.flows)
        self._sample_counter = 0
        self._last_export_ns = 0
        self.exports_sent = 0

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        tuple5 = packet.five_tuple()
        if tuple5 is not None and self._sampled():
            record = self.flows.lookup(tuple5)
            if record is None:
                if len(self.flows) < self.capacity:
                    record = FlowRecord()
                    self.flows.insert(tuple5, record)
                else:
                    self.counter("cache_full").count(packet.wire_len)
            if record is not None:
                record.update(packet.wire_len, ctx.time_ns)
        if ctx.time_ns - self._last_export_ns >= self.export_interval_ns:
            self._export(ctx)
        return Verdict.PASS

    def _sampled(self) -> bool:
        self._sample_counter += 1
        if self._sample_counter >= self.sample_rate:
            self._sample_counter = 0
            return True
        return False

    def _export(self, ctx: PPEContext) -> None:
        """Emit expired flow records toward the collector."""
        self._last_export_ns = ctx.time_ns
        batch: list[tuple[tuple[int, int, int, int, int], FlowRecord]] = []
        for key, record in self.flows.items():
            batch.append((key, record))
            if len(batch) >= self.max_records_per_export:
                break
        if not batch:
            return
        for key, _ in batch:
            self.flows.delete(key)
        report = make_udp(
            src_ip=self.exporter_ip,
            dst_ip=self.collector_ip,
            sport=UDPPort.NETFLOW,
            dport=UDPPort.NETFLOW,
            payload=pack_records(batch, ctx.device_id, ctx.time_ns),
        )
        ctx.emit(report, Direction.EDGE_TO_LINE)
        self.exports_sent += 1
        self.counter("exports").count(report.wire_len)

    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="NetFlow-like flow telemetry exporter",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 54}),
                Stage("ts", StageKind.TIMESTAMP, {}),
                Stage(
                    "flow_cache",
                    StageKind.EXACT_TABLE,
                    {"entries": self.capacity, "key_bits": 104, "value_bits": 160},
                ),
                Stage("stats", StageKind.COUNTERS, {"counters": 64}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1518, "metadata_bits": 192},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 54}),
            ],
        )

    def config(self) -> dict:
        return {
            "capacity": self.capacity,
            "sample_rate": self.sample_rate,
            "export_interval_ns": self.export_interval_ns,
            "collector_ip": self.collector_ip,
            "exporter_ip": self.exporter_ip,
            "max_records_per_export": self.max_records_per_export,
        }
