"""Tunnel gateway: GRE / VXLAN / IP-in-IP encapsulation at the edge (§3).

"Programmable SFPs can insert tunneling headers for GRE, VXLAN, or
IP-in-IP without involving the host."  The gateway maps inner destination
prefixes to tunnel endpoints via an LPM table; edge→line traffic matching
a route is encapsulated, line→edge traffic addressed to this endpoint is
decapsulated.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import ip_to_int
from ..core.ppe import Direction, PPEApplication, PPEContext, Verdict
from ..core.tables import LPMTable
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import (
    GRE,
    IPProto,
    IPv4,
    Packet,
    UDP,
    VXLAN,
    gre_encap,
    vxlan_encap,
)

SUPPORTED_KINDS = ("gre", "vxlan", "ipip")


@dataclass(frozen=True)
class TunnelRoute:
    """Where matching traffic should be tunneled."""

    kind: str  # gre | vxlan | ipip
    remote_ip: str
    key: int | None = None  # GRE key or VXLAN VNI

    def __post_init__(self) -> None:
        if self.kind not in SUPPORTED_KINDS:
            raise ConfigError(f"unknown tunnel kind {self.kind!r}")


class TunnelGateway(PPEApplication):
    """Prefix-routed encap/decap gateway."""

    name = "tunnel"

    def __init__(self, local_ip: str = "192.0.2.1", capacity: int = 1024) -> None:
        super().__init__()
        self.local_ip = local_ip
        self._local = ip_to_int(local_ip)
        self.capacity = capacity
        self.routes: LPMTable[TunnelRoute] = LPMTable(
            "tunnel_routes", capacity, key_bits=32
        )
        self.tables.register(self.routes)

    def add_route(self, prefix: str, prefix_len: int, route: TunnelRoute) -> None:
        self.routes.insert(ip_to_int(prefix), prefix_len, route)

    # ------------------------------------------------------------------
    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        if ctx.direction is Direction.EDGE_TO_LINE:
            return self._maybe_encap(packet)
        return self._maybe_decap(packet)

    def _maybe_encap(self, packet: Packet) -> Verdict:
        ip = packet.ipv4
        if ip is None:
            return Verdict.PASS
        route = self.routes.lookup(ip.dst)
        if route is None:
            self.counter("no_route").count(packet.wire_len)
            return Verdict.PASS
        if route.kind == "gre":
            gre_encap(packet, self.local_ip, route.remote_ip, key=route.key)
        elif route.kind == "vxlan":
            vxlan_encap(packet, route.key or 0, self.local_ip, route.remote_ip)
        else:  # ipip
            self._ipip_encap(packet, route.remote_ip)
        self.counter(f"encap_{route.kind}").count(packet.wire_len)
        return Verdict.PASS

    def _ipip_encap(self, packet: Packet, remote_ip: str) -> None:
        inner = packet.ipv4
        assert inner is not None  # caller checked
        outer = IPv4(self.local_ip, remote_ip, proto=IPProto.IPIP)
        packet.insert_before(inner, outer)

    def _maybe_decap(self, packet: Packet) -> Verdict:
        outer = packet.ipv4
        if outer is None or outer.dst != self._local:
            return Verdict.PASS
        if outer.proto == IPProto.GRE:
            gre = packet.get(GRE)
            if gre is not None:
                packet.remove(outer)
                packet.remove(gre)
                self.counter("decap_gre").count(packet.wire_len)
                return Verdict.PASS
        if outer.proto == IPProto.IPIP:
            packet.remove(outer)
            self.counter("decap_ipip").count(packet.wire_len)
            return Verdict.PASS
        if outer.proto == IPProto.UDP:
            vxlan = packet.get(VXLAN)
            if vxlan is not None:
                udp = packet.get(UDP)
                eth_outer = packet.eth
                for header in (eth_outer, outer, udp, vxlan):
                    if header is not None:
                        packet.remove(header)
                self.counter("decap_vxlan").count(packet.wire_len)
                return Verdict.PASS
        return Verdict.PASS

    # ------------------------------------------------------------------
    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="GRE/VXLAN/IPinIP tunnel gateway",
            stages=[
                # Parses up to outer eth+ip+udp+vxlan+inner eth+ip.
                Stage("parse", StageKind.PARSER, {"header_bytes": 90}),
                Stage(
                    "routes",
                    StageKind.LPM_TABLE,
                    {"entries": self.capacity, "key_bits": 32, "value_bits": 72},
                ),
                # Encap writes a full outer header stack (~50 B worst case).
                Stage("encap", StageKind.ACTION, {"rewrite_bits": 50 * 8}),
                Stage("csum", StageKind.CHECKSUM, {}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1568, "metadata_bits": 192},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 90}),
            ],
        )

    def config(self) -> dict:
        return {"local_ip": self.local_ip, "capacity": self.capacity}
