"""VLAN tagging and QinQ segmentation (§3, Packet Transformation).

Models the access-port behaviour a FlexSFP adds to a legacy switch: tag
untagged subscriber traffic heading into the network (edge→line), strip
the tag on the way back, and optionally stack an 802.1ad service tag
(QinQ) for multi-tenant L2 segmentation.
"""

from __future__ import annotations

from ..core.flowcache import FlowRecipe
from ..core.ppe import Direction, PPEApplication, PPEContext, Verdict
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import Packet, VLAN, vlan_pop, vlan_push


class VlanTagger(PPEApplication):
    """Access-mode VLAN tagger with optional QinQ service tag.

    edge→line: pushes the customer tag (and the service tag when
    configured); line→edge: pops tags that match, drops mismatched VIDs
    (standard access-port isolation).
    """

    name = "vlan"

    def __init__(
        self,
        access_vid: int = 100,
        pcp: int = 0,
        service_vid: int | None = None,
        drop_foreign: bool = True,
    ) -> None:
        super().__init__()
        if not 1 <= access_vid <= 4094:
            raise ConfigError(f"access VID out of range: {access_vid}")
        if service_vid is not None and not 1 <= service_vid <= 4094:
            raise ConfigError(f"service VID out of range: {service_vid}")
        self.access_vid = access_vid
        self.pcp = pcp
        self.service_vid = service_vid
        self.drop_foreign = drop_foreign

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        if ctx.direction is Direction.EDGE_TO_LINE:
            return self._tag(packet)
        return self._untag(packet)

    def _tag(self, packet: Packet) -> Verdict:
        if packet.get(VLAN) is not None:
            # Already tagged at an access port: policy violation.
            self.counter("already_tagged").count(packet.wire_len)
            return Verdict.DROP if self.drop_foreign else Verdict.PASS
        vlan_push(packet, self.access_vid, pcp=self.pcp)
        if self.service_vid is not None:
            vlan_push(packet, self.service_vid, pcp=self.pcp, service=True)
        self.counter("tagged").count(packet.wire_len)
        return Verdict.PASS

    def _untag(self, packet: Packet) -> Verdict:
        expected = (
            [self.service_vid, self.access_vid]
            if self.service_vid is not None
            else [self.access_vid]
        )
        for vid in expected:
            tag = packet.get(VLAN)
            if tag is None or tag.vid != vid:
                self.counter("foreign_vid").count(packet.wire_len)
                return Verdict.DROP if self.drop_foreign else Verdict.PASS
            vlan_pop(packet)
        self.counter("untagged").count(packet.wire_len)
        return Verdict.PASS

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def flow_key(self, packet: Packet):
        if packet.eth is None:
            return None  # vlan_push would fail; leave it to the slow path
        # The verdict depends only on which VLAN tags lead the stack (at
        # most two: service + customer), so key on those VIDs; ``()``
        # is the untagged flow.
        return tuple(tag.vid for tag in packet.get_all(VLAN)[:2])

    def decide(self, packet: Packet, ctx: PPEContext) -> FlowRecipe | None:
        if ctx.direction is Direction.EDGE_TO_LINE:
            if packet.get(VLAN) is not None:
                return FlowRecipe(
                    Verdict.DROP if self.drop_foreign else Verdict.PASS,
                    counters=("already_tagged",),
                )
            ops = [("vlan_push", self.access_vid, self.pcp, False)]
            if self.service_vid is not None:
                ops.append(("vlan_push", self.service_vid, self.pcp, True))
            return FlowRecipe(
                Verdict.PASS, ops=tuple(ops), counters=("tagged",)
            )
        expected = (
            [self.service_vid, self.access_vid]
            if self.service_vid is not None
            else [self.access_vid]
        )
        tags = packet.get_all(VLAN)
        for i, vid in enumerate(expected):
            if i >= len(tags) or tags[i].vid != vid:
                # The slow path pops ``i`` matching tags before hitting
                # the mismatch and counting, so the recipe replays the
                # same partial pop.
                return FlowRecipe(
                    Verdict.DROP if self.drop_foreign else Verdict.PASS,
                    ops=(("vlan_pop",),) * i,
                    counters=("foreign_vid",),
                )
        return FlowRecipe(
            Verdict.PASS,
            ops=(("vlan_pop",),) * len(expected),
            counters=("untagged",),
        )

    def pipeline_spec(self) -> PipelineSpec:
        tags = 2 if self.service_vid is not None else 1
        return PipelineSpec(
            name=self.name,
            description="access-port VLAN/QinQ tagger",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 14 + 4 * tags}),
                Stage("tag", StageKind.ACTION, {"rewrite_bits": 32 * tags + 16}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1522, "metadata_bits": 128},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 14 + 4 * tags}),
            ],
        )

    def config(self) -> dict:
        return {
            "access_vid": self.access_vid,
            "pcp": self.pcp,
            "service_vid": self.service_vid,
            "drop_foreign": self.drop_foreign,
        }
