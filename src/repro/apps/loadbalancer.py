"""Katran-style L4 load balancing at the optical boundary (§3).

"Load balancing is another natural fit, such as hashing over packet
headers to distribute flows across uplinks, similar to Katran, but
executed directly at the optical boundary."

The balancer maps virtual services (VIP, port, proto) to backend pools and
steers flows with a deterministic hash over the 5-tuple, so a flow always
lands on the same backend (consistent within a configured pool
generation).  Selected packets get their destination IP/MAC rewritten —
the simple DSR-ish variant that fits a compact PPE chain.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from .._util import ip_to_int, mac_to_int
from ..core.flowcache import FlowRecipe
from ..core.ppe import PPEApplication, PPEContext, Verdict
from ..core.tables import ExactTable
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import Packet


@dataclass(frozen=True)
class Backend:
    """One real server behind a VIP."""

    ip: str
    mac: str
    weight: int = 1

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError("backend weight must be positive")


def flow_hash(tuple5: tuple[int, int, int, int, int]) -> int:
    """Deterministic flow hash (CRC32 over the packed 5-tuple)."""
    src, dst, proto, sport, dport = tuple5
    key = (
        src.to_bytes(4, "big")
        + dst.to_bytes(4, "big")
        + proto.to_bytes(1, "big")
        + sport.to_bytes(2, "big")
        + dport.to_bytes(2, "big")
    )
    return zlib.crc32(key)


class L4LoadBalancer(PPEApplication):
    """Hash-based VIP → backend steering."""

    name = "loadbalancer"

    def __init__(self, capacity: int = 64, ring_slots: int = 256) -> None:
        super().__init__()
        if ring_slots <= 0:
            raise ConfigError("ring_slots must be positive")
        self.capacity = capacity
        self.ring_slots = ring_slots
        # (vip, port, proto) -> list of Backend expanded into a hash ring.
        self.vips: ExactTable[tuple[int, int, int], list[Backend]] = ExactTable(
            "vips", capacity
        )
        self.tables.register(self.vips)

    def add_service(
        self, vip: str, port: int, proto: int, backends: list[Backend]
    ) -> None:
        """Register (or atomically update) a virtual service."""
        if not backends:
            raise ConfigError("a service needs at least one backend")
        self.vips.insert((ip_to_int(vip), port, proto), list(backends))

    def _ring(self, backends: list[Backend]) -> list[Backend]:
        """Weight-expanded backend ring of ``ring_slots`` entries."""
        weighted: list[Backend] = []
        for backend in backends:
            weighted.extend([backend] * backend.weight)
        return [weighted[i % len(weighted)] for i in range(self.ring_slots)]

    def select_backend(self, packet: Packet) -> Backend | None:
        """Which backend the hash steers this packet to (None = no VIP)."""
        tuple5 = packet.five_tuple()
        if tuple5 is None:
            return None
        src, dst, proto, _sport, dport = tuple5
        backends = self.vips.lookup((dst, dport, proto))
        if backends is None:
            return None
        ring = self._ring(backends)
        return ring[flow_hash(tuple5) % self.ring_slots]

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        backend = self.select_backend(packet)
        if backend is None:
            self.counter("no_vip").count(packet.wire_len)
            return Verdict.PASS
        ip = packet.ipv4
        eth = packet.eth
        assert ip is not None and eth is not None  # five_tuple() guaranteed IPv4
        ip.dst = ip_to_int(backend.ip)
        eth.dst = mac_to_int(backend.mac)
        self.counter("steered").count(packet.wire_len)
        return Verdict.PASS

    def flow_key(self, packet: Packet):
        tuple5 = packet.five_tuple()
        if tuple5 is None:
            # Every non-IP frame takes the same no-VIP path.
            return ("no-flow",)
        return tuple5

    def decide(self, packet: Packet, ctx: PPEContext) -> FlowRecipe | None:
        backend = self.select_backend(packet)
        if backend is None:
            return FlowRecipe(Verdict.PASS, counters=("no_vip",))
        if packet.ipv4 is None or packet.eth is None:
            return None  # mirror process(): let the slow path assert
        return FlowRecipe(
            Verdict.PASS,
            mutations=(
                ("ipv4", "dst", ip_to_int(backend.ip)),
                ("eth", "dst", mac_to_int(backend.mac)),
            ),
            counters=("steered",),
        )

    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="Katran-like L4 load balancer",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 54}),
                Stage("hash", StageKind.HASH, {"key_bits": 104}),
                Stage(
                    "vip_lookup",
                    StageKind.EXACT_TABLE,
                    {"entries": self.capacity, "key_bits": 56, "value_bits": 16},
                ),
                Stage(
                    "ring",
                    StageKind.EXACT_TABLE,
                    {
                        "entries": self.capacity * self.ring_slots,
                        "key_bits": 16,
                        "value_bits": 80,  # backend IP + MAC
                    },
                ),
                Stage("rewrite", StageKind.ACTION, {"rewrite_bits": 80}),
                Stage("csum", StageKind.CHECKSUM, {}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1518, "metadata_bits": 192},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 54}),
            ],
        )

    def config(self) -> dict:
        return {"capacity": self.capacity, "ring_slots": self.ring_slots}
