"""DNS / DoH filtering at the optical edge (§2.1, §3; P4DDPI-style).

Two enforcement mechanisms:

* **DNS blocklist** — parse UDP/53 queries in the data plane and drop
  queries whose QNAME (or any parent domain) is blocked.
* **DoH blocking** — per-subscriber policies such as "DoH blocking"
  (§2.1): drop TCP/UDP 443 traffic toward known DoH resolver addresses,
  forcing clients back to inspectable cleartext DNS.
"""

from __future__ import annotations

from .._util import ip_to_int
from ..core.flowcache import FlowRecipe
from ..core.ppe import PPEApplication, PPEContext, Verdict
from ..core.tables import ExactTable
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import Packet, TCP, UDP


def domain_suffixes(qname: str) -> list[str]:
    """The domain itself plus every parent: ``a.b.c`` → [a.b.c, b.c, c]."""
    labels = qname.rstrip(".").lower().split(".")
    return [".".join(labels[i:]) for i in range(len(labels))]


class DnsFilter(PPEApplication):
    """Domain blocklisting plus DoH resolver blocking."""

    name = "dnsfilter"

    def __init__(
        self,
        domain_capacity: int = 8192,
        resolver_capacity: int = 256,
        block_doh: bool = True,
    ) -> None:
        super().__init__()
        self.domain_capacity = domain_capacity
        self.resolver_capacity = resolver_capacity
        self.block_doh = block_doh
        # Domains are stored by exact string; parents are probed at lookup,
        # mirroring how the hardware hashes each suffix in turn.
        self.blocked_domains: ExactTable[str, bool] = ExactTable(
            "blocked_domains", domain_capacity
        )
        self.doh_resolvers: ExactTable[int, bool] = ExactTable(
            "doh_resolvers", resolver_capacity
        )
        self.tables.register(self.blocked_domains)
        self.tables.register(self.doh_resolvers)

    def block_domain(self, domain: str) -> None:
        """Block ``domain`` and every subdomain of it."""
        self.blocked_domains.insert(domain.rstrip(".").lower(), True)

    def add_doh_resolver(self, ip: str) -> None:
        """Register a known DoH resolver address."""
        self.doh_resolvers.insert(ip_to_int(ip), True)

    def is_blocked(self, qname: str) -> bool:
        return any(
            self.blocked_domains.lookup(suffix) for suffix in domain_suffixes(qname)
        )

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        # DoH blocking: port 443 toward a known resolver.
        if self.block_doh:
            ip = packet.ipv4
            l4 = packet.get(TCP) or packet.get(UDP)
            if (
                ip is not None
                and l4 is not None
                and l4.dport == 443
                and self.doh_resolvers.lookup(ip.dst)
            ):
                self.counter("doh_blocked").count(packet.wire_len)
                return Verdict.DROP
        # Cleartext DNS query inspection.
        message = packet.dns()
        if message is not None and message.is_query:
            for question in message.questions:
                if self.is_blocked(question.qname):
                    self.counter("dns_blocked").count(packet.wire_len)
                    return Verdict.DROP
            self.counter("dns_allowed").count(packet.wire_len)
        return Verdict.PASS

    def flow_key(self, packet: Packet):
        udp = packet.udp
        if udp is not None and 53 in (udp.sport, udp.dport):
            # Potential cleartext DNS: the verdict depends on the QNAME in
            # the payload, not on any flow key — never cache.
            return None
        ip = packet.ipv4
        l4 = packet.get(TCP) or packet.get(UDP)
        return (
            ip.dst if ip is not None else None,
            l4.dport if l4 is not None else None,
        )

    def decide(self, packet: Packet, ctx: PPEContext) -> FlowRecipe | None:
        if self.block_doh:
            ip = packet.ipv4
            l4 = packet.get(TCP) or packet.get(UDP)
            if (
                ip is not None
                and l4 is not None
                and l4.dport == 443
                and self.doh_resolvers.lookup(ip.dst)
            ):
                return FlowRecipe(Verdict.DROP, counters=("doh_blocked",))
        # flow_key filtered out anything DNS-parseable; the rest passes.
        return FlowRecipe(Verdict.PASS)

    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="DNS blocklist + DoH resolver filter",
            stages=[
                # DNS parsing reaches past L4 into the QNAME (~118 B budget).
                Stage("parse", StageKind.PARSER, {"header_bytes": 118}),
                Stage("qname_hash", StageKind.HASH, {"key_bits": 255 * 8 // 8}),
                Stage(
                    "domains",
                    StageKind.EXACT_TABLE,
                    {
                        "entries": self.domain_capacity,
                        "key_bits": 64,  # hashed domain digest
                        "value_bits": 8,
                    },
                ),
                Stage(
                    "resolvers",
                    StageKind.EXACT_TABLE,
                    {
                        "entries": self.resolver_capacity,
                        "key_bits": 32,
                        "value_bits": 8,
                    },
                ),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1518, "metadata_bits": 128},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 118}),
            ],
        )

    def config(self) -> dict:
        return {
            "domain_capacity": self.domain_capacity,
            "resolver_capacity": self.resolver_capacity,
            "block_doh": self.block_doh,
        }
