"""Active link-health monitoring (§3): flaps, microbursts, fiber breaks.

"Programmable SFPs can also play an active role in detecting faults such
as link flapping, microbursts, or fiber breaks, with a 'wire-level'
capillarity that centralized tools can hardly achieve."

The monitor observes every frame crossing the module and detects:

* **microbursts** — a run of back-to-back minimum-gap arrivals (or a PPE
  queue spike) inside a short window;
* **dead intervals** — silence longer than ``dead_interval_ns`` on a link
  that was carrying traffic (a flap or break candidate, reported when
  traffic resumes or when :meth:`check_liveness` is polled);
* **flapping** — repeated dead intervals within the flap window.

Alerts are exported as UDP datagrams to a collector via ``ctx.emit``, so
a fleet of FlexSFPs becomes a distributed link-health sensor.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..core.ppe import Direction, PPEApplication, PPEContext, Verdict
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import Packet, make_udp

ALERT_PORT = 5606
_ALERT = struct.Struct("!HBxIQQ")
ALERT_VERSION = 1

ALERT_KINDS = {"microburst": 1, "dead-interval": 2, "flapping": 3}
ALERT_KIND_NAMES = {v: k for k, v in ALERT_KINDS.items()}


@dataclass(frozen=True)
class LinkEvent:
    """One detected link-health event."""

    kind: str
    at_ns: int
    detail_ns: int  # burst length / silence length


def pack_alert(device_id: int, event: LinkEvent) -> bytes:
    return _ALERT.pack(
        ALERT_VERSION, ALERT_KINDS[event.kind], device_id, event.at_ns, event.detail_ns
    )


def unpack_alert(payload: bytes) -> tuple[int, LinkEvent]:
    version, kind, device_id, at_ns, detail_ns = _ALERT.unpack_from(payload, 0)
    if version != ALERT_VERSION:
        raise ConfigError(f"unknown alert version {version}")
    return device_id, LinkEvent(ALERT_KIND_NAMES[kind], at_ns, detail_ns)


class LinkHealthMonitor(PPEApplication):
    """Passive per-port fault detector."""

    name = "linkhealth"

    def __init__(
        self,
        burst_gap_ns: int = 100,
        burst_packets: int = 32,
        dead_interval_ns: int = 1_000_000,  # 1 ms of silence
        flap_count: int = 3,
        flap_window_ns: int = 1_000_000_000,
        collector_ip: str = "203.0.113.10",
        exporter_ip: str = "203.0.113.3",
    ) -> None:
        super().__init__()
        if burst_packets < 2:
            raise ConfigError("burst_packets must be at least 2")
        if dead_interval_ns <= 0 or flap_window_ns <= 0:
            raise ConfigError("intervals must be positive")
        self.burst_gap_ns = burst_gap_ns
        self.burst_packets = burst_packets
        self.dead_interval_ns = dead_interval_ns
        self.flap_count = flap_count
        self.flap_window_ns = flap_window_ns
        self.collector_ip = collector_ip
        self.exporter_ip = exporter_ip
        self.events: list[LinkEvent] = []
        self._last_arrival_ns: int | None = None
        self._burst_run = 0
        self._burst_start_ns = 0
        self._burst_open = False
        self._dead_marks: list[int] = []

    # ------------------------------------------------------------------
    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        now = ctx.time_ns
        if self._last_arrival_ns is not None:
            gap = now - self._last_arrival_ns
            self._track_burst(gap, now, ctx)
            self._track_silence(gap, now, ctx)
        else:
            self._burst_run = 1
            self._burst_start_ns = now
        self._last_arrival_ns = now
        self.counter("observed").count(packet.wire_len)
        return Verdict.PASS

    def _track_burst(self, gap_ns: int, now: int, ctx: PPEContext) -> None:
        if gap_ns <= self.burst_gap_ns:
            if self._burst_run == 0:
                self._burst_start_ns = now
            self._burst_run += 1
            if self._burst_run == self.burst_packets and not self._burst_open:
                self._burst_open = True
                self._record(
                    LinkEvent("microburst", now, now - self._burst_start_ns), ctx
                )
        else:
            self._burst_run = 0
            self._burst_open = False

    def _track_silence(self, gap_ns: int, now: int, ctx: PPEContext) -> None:
        if gap_ns < self.dead_interval_ns:
            return
        self._record(LinkEvent("dead-interval", now, gap_ns), ctx)
        self._dead_marks.append(now)
        self._dead_marks = [
            mark for mark in self._dead_marks if now - mark <= self.flap_window_ns
        ]
        if len(self._dead_marks) >= self.flap_count:
            self._record(LinkEvent("flapping", now, self.flap_window_ns), ctx)
            self._dead_marks.clear()

    def _record(self, event: LinkEvent, ctx: PPEContext | None) -> None:
        self.events.append(event)
        self.counter(event.kind).count()
        if ctx is not None:
            alert = make_udp(
                src_ip=self.exporter_ip,
                dst_ip=self.collector_ip,
                sport=ALERT_PORT,
                dport=ALERT_PORT,
                payload=pack_alert(ctx.device_id, event),
            )
            ctx.emit(alert, Direction.EDGE_TO_LINE)

    # ------------------------------------------------------------------
    def check_liveness(self, now_ns: int) -> bool:
        """Poll path (control plane timer): is the link currently alive?

        Returns False — and records a dead-interval event with no alert
        emission (the CP sends its own) — when silence exceeds the dead
        interval.  A link that never carried traffic reports alive.
        """
        if self._last_arrival_ns is None:
            return True
        gap = now_ns - self._last_arrival_ns
        if gap >= self.dead_interval_ns:
            self._record(LinkEvent("dead-interval", now_ns, gap), None)
            self._last_arrival_ns = now_ns  # avoid duplicate reports
            return False
        return True

    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="link flap / microburst / fiber-break detector",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 14}),
                Stage("ts", StageKind.TIMESTAMP, {}),
                Stage("stats", StageKind.COUNTERS, {"counters": 32}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1518, "metadata_bits": 64},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 14}),
            ],
        )

    def config(self) -> dict:
        return {
            "burst_gap_ns": self.burst_gap_ns,
            "burst_packets": self.burst_packets,
            "dead_interval_ns": self.dead_interval_ns,
            "flap_count": self.flap_count,
            "flap_window_ns": self.flap_window_ns,
            "collector_ip": self.collector_ip,
            "exporter_ip": self.exporter_ip,
        }
