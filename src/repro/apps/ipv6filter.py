"""Per-subscriber IPv6 filtering (§2.1).

"Per-subscriber policies such as IPv6 filtering, DoH blocking, or basic
rate-limiting must be enforced upstream" on legacy gear — the FlexSFP
moves them to the port.  This filter implements the common access-network
policies: block all IPv6, allow-list specific next-headers (e.g. permit
ICMPv6 NDP so the link stays functional while blocking transport), or
drop IPv6 tunneled in IPv4 (protocol 41) that would bypass an IPv4-only
policy.
"""

from __future__ import annotations

from ..core.ppe import PPEApplication, PPEContext, Verdict
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import IPProto, IPv6, Packet

IPV6_IN_IPV4_PROTO = 41  # 6in4 encapsulation
ICMPV6 = IPProto.ICMPV6

MODES = ("block-all", "allow-list", "permit-all")


class Ipv6Filter(PPEApplication):
    """Subscriber-port IPv6 policy.

    Modes:

    * ``block-all`` — no IPv6 at all (and, with ``block_6in4``, no IPv6
      smuggled inside IPv4 protocol-41 either).
    * ``allow-list`` — only the next-headers in ``allowed_next_headers``
      pass (default: ICMPv6, so neighbor discovery keeps working).
    * ``permit-all`` — monitoring only (counters, no drops).
    """

    name = "ipv6filter"

    def __init__(
        self,
        mode: str = "block-all",
        allowed_next_headers: tuple[int, ...] = (ICMPV6,),
        block_6in4: bool = True,
    ) -> None:
        super().__init__()
        if mode not in MODES:
            raise ConfigError(f"unknown mode {mode!r}; pick from {MODES}")
        self.mode = mode
        self.allowed_next_headers = tuple(allowed_next_headers)
        self.block_6in4 = block_6in4

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        ip6 = packet.ipv6
        if ip6 is not None:
            return self._apply_policy(packet, ip6)
        ip4 = packet.ipv4
        if (
            self.block_6in4
            and self.mode != "permit-all"
            and ip4 is not None
            and ip4.proto == IPV6_IN_IPV4_PROTO
        ):
            self.counter("blocked_6in4").count(packet.wire_len)
            return Verdict.DROP
        return Verdict.PASS

    def _apply_policy(self, packet: Packet, ip6: IPv6) -> Verdict:
        self.counter("ipv6_seen").count(packet.wire_len)
        if self.mode == "permit-all":
            return Verdict.PASS
        if self.mode == "block-all":
            self.counter("blocked").count(packet.wire_len)
            return Verdict.DROP
        if ip6.next_header in self.allowed_next_headers:
            self.counter("allowed").count(packet.wire_len)
            return Verdict.PASS
        self.counter("blocked").count(packet.wire_len)
        return Verdict.DROP

    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="per-subscriber IPv6 policy filter",
            stages=[
                # Ethernet + IPv6 fixed header (+ outer IPv4 for 6in4).
                Stage("parse", StageKind.PARSER, {"header_bytes": 74}),
                Stage(
                    "policy",
                    StageKind.EXACT_TABLE,
                    {"entries": 64, "key_bits": 8, "value_bits": 8},
                ),
                Stage("stats", StageKind.COUNTERS, {"counters": 8}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1518, "metadata_bits": 64},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 74}),
            ],
        )

    def config(self) -> dict:
        return {
            "mode": self.mode,
            "allowed_next_headers": list(self.allowed_next_headers),
            "block_6in4": self.block_6in4,
        }
