"""Per-port firewalling: 5-tuple ACL at the optical edge (§3).

Rules are ternary matches over the 104-bit 5-tuple key
``src(32) | dst(32) | proto(8) | sport(16) | dport(16)`` with priorities,
compiled into the PPE's TCAM-emulation stage.  The default action applies
when no rule matches — the classic "default deny at the edge" deployment
drops unknown traffic before it ever reaches the switch.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import ip_to_int
from ..core.flowcache import FlowRecipe
from ..core.ppe import PPEApplication, PPEContext, Verdict
from ..core.tables import TernaryTable
from ..errors import ConfigError
from ..hls.ir import PipelineSpec, Stage, StageKind
from ..packet import Packet

KEY_BITS = 104


def five_tuple_key(src: int, dst: int, proto: int, sport: int, dport: int) -> int:
    """Pack a 5-tuple into the 104-bit ACL key."""
    return (src << 72) | (dst << 40) | (proto << 32) | (sport << 16) | dport


@dataclass(frozen=True)
class AclRule:
    """One ACL rule: masked 5-tuple plus action and priority.

    ``None`` fields are wildcards.  ``src``/``dst`` accept ``"a.b.c.d"`` or
    ``"a.b.c.d/len"`` prefixes.
    """

    action: str  # "permit" | "deny"
    src: str | None = None
    dst: str | None = None
    proto: int | None = None
    sport: int | None = None
    dport: int | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.action not in ("permit", "deny"):
            raise ConfigError(f"unknown ACL action {self.action!r}")

    def _ip_field(self, spec: str | None) -> tuple[int, int]:
        if spec is None:
            return 0, 0
        if "/" in spec:
            addr, length_str = spec.split("/", 1)
            length = int(length_str)
        else:
            addr, length = spec, 32
        if not 0 <= length <= 32:
            raise ConfigError(f"bad prefix length in {spec!r}")
        mask = 0 if length == 0 else ((1 << length) - 1) << (32 - length)
        return ip_to_int(addr) & mask, mask

    def key_mask(self) -> tuple[int, int]:
        """Compile the rule to a (value, mask) pair over the 104-bit key."""
        src_value, src_mask = self._ip_field(self.src)
        dst_value, dst_mask = self._ip_field(self.dst)
        value = five_tuple_key(
            src_value,
            dst_value,
            self.proto or 0,
            self.sport or 0,
            self.dport or 0,
        )
        mask = five_tuple_key(
            src_mask,
            dst_mask,
            0xFF if self.proto is not None else 0,
            0xFFFF if self.sport is not None else 0,
            0xFFFF if self.dport is not None else 0,
        )
        return value, mask


class AclFirewall(PPEApplication):
    """Stateless 5-tuple packet filter."""

    name = "firewall"

    def __init__(self, capacity: int = 256, default_action: str = "permit") -> None:
        super().__init__()
        if default_action not in ("permit", "deny"):
            raise ConfigError(f"unknown default action {default_action!r}")
        self.capacity = capacity
        self.default_action = default_action
        self.acl: TernaryTable[str] = TernaryTable("acl", capacity, key_bits=KEY_BITS)
        self.tables.register(self.acl)

    def add_rule(self, rule: AclRule) -> None:
        value, mask = rule.key_mask()
        self.acl.insert(value, mask, rule.priority, rule.action)

    def install_ruleset(self, rules: list[AclRule]) -> None:
        """Atomically replace the whole rule set."""
        compiled = [(*rule.key_mask(), rule.priority, rule.action) for rule in rules]
        self.acl.atomic_replace(compiled)

    def process(self, packet: Packet, ctx: PPEContext) -> Verdict:
        tuple5 = packet.five_tuple()
        if tuple5 is None or packet.ipv6 is not None:
            # Non-IPv4 traffic falls through to the default action.
            action = self.default_action
        else:
            key = five_tuple_key(*tuple5)
            matched = self.acl.lookup(key)
            action = matched if matched is not None else self.default_action
        if action == "deny":
            self.counter("denied").count(packet.wire_len)
            return Verdict.DROP
        self.counter("permitted").count(packet.wire_len)
        return Verdict.PASS

    def flow_key(self, packet: Packet):
        tuple5 = packet.five_tuple()
        if tuple5 is None or packet.ipv6 is not None:
            # All non-IPv4 traffic shares the default action: one cache slot.
            return ("non-ipv4",)
        return tuple5

    def decide(self, packet: Packet, ctx: PPEContext) -> FlowRecipe | None:
        tuple5 = packet.five_tuple()
        if tuple5 is None or packet.ipv6 is not None:
            action = self.default_action
        else:
            matched = self.acl.lookup(five_tuple_key(*tuple5))
            action = matched if matched is not None else self.default_action
        if action == "deny":
            return FlowRecipe(Verdict.DROP, counters=("denied",))
        return FlowRecipe(Verdict.PASS, counters=("permitted",))

    def pipeline_spec(self) -> PipelineSpec:
        return PipelineSpec(
            name=self.name,
            description="per-port 5-tuple ACL firewall",
            stages=[
                Stage("parse", StageKind.PARSER, {"header_bytes": 54}),
                Stage(
                    "acl",
                    StageKind.TERNARY_TABLE,
                    {"entries": self.capacity, "key_bits": KEY_BITS, "value_bits": 8},
                ),
                Stage("stats", StageKind.COUNTERS, {"counters": self.capacity}),
                Stage(
                    "buffer",
                    StageKind.FIFO,
                    {"depth_bytes": 2 * 1518, "metadata_bits": 192},
                ),
                Stage("deparse", StageKind.DEPARSER, {"header_bytes": 54}),
            ],
        )

    def config(self) -> dict:
        return {"capacity": self.capacity, "default_action": self.default_action}
