"""Small shared helpers: address coercion/formatting and bit math.

The packet headers store addresses as plain integers for fast packing; these
helpers convert between human-readable notations and the integer forms, and
provide the handful of bit-twiddling utilities used across the toolkit.
"""

from __future__ import annotations

import re
from functools import lru_cache

from .errors import ConfigError

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")


@lru_cache(maxsize=1024)
def mac_to_int(mac: str | int) -> int:
    """Coerce a MAC address (``aa:bb:cc:dd:ee:ff`` or int) to a 48-bit int."""
    if isinstance(mac, int):
        if not 0 <= mac < (1 << 48):
            raise ConfigError(f"MAC integer out of range: {mac:#x}")
        return mac
    if not _MAC_RE.match(mac):
        raise ConfigError(f"invalid MAC address: {mac!r}")
    return int(mac.replace("-", ":").replace(":", ""), 16)


def int_to_mac(value: int) -> str:
    """Format a 48-bit integer as ``aa:bb:cc:dd:ee:ff``."""
    if not 0 <= value < (1 << 48):
        raise ConfigError(f"MAC integer out of range: {value:#x}")
    raw = value.to_bytes(6, "big")
    return ":".join(f"{b:02x}" for b in raw)


@lru_cache(maxsize=1024)
def ip_to_int(ip: str | int) -> int:
    """Coerce an IPv4 address (dotted quad or int) to a 32-bit int."""
    if isinstance(ip, int):
        if not 0 <= ip < (1 << 32):
            raise ConfigError(f"IPv4 integer out of range: {ip:#x}")
        return ip
    parts = ip.split(".")
    if len(parts) != 4:
        raise ConfigError(f"invalid IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ConfigError(f"invalid IPv4 address: {ip!r}")
        octet = int(part)
        if octet > 255:
            raise ConfigError(f"invalid IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted quad."""
    if not 0 <= value < (1 << 32):
        raise ConfigError(f"IPv4 integer out of range: {value:#x}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip6_to_int(ip: str | int) -> int:
    """Coerce an IPv6 address (RFC 4291 text or int) to a 128-bit int."""
    if isinstance(ip, int):
        if not 0 <= ip < (1 << 128):
            raise ConfigError(f"IPv6 integer out of range: {ip:#x}")
        return ip
    import ipaddress

    try:
        return int(ipaddress.IPv6Address(ip))
    except ValueError as exc:
        raise ConfigError(f"invalid IPv6 address: {ip!r}") from exc


def int_to_ip6(value: int) -> str:
    """Format a 128-bit integer in canonical RFC 5952 IPv6 notation."""
    import ipaddress

    if not 0 <= value < (1 << 128):
        raise ConfigError(f"IPv6 integer out of range: {value:#x}")
    return str(ipaddress.IPv6Address(value))


def check_range(name: str, value: int, bits: int) -> int:
    """Validate that ``value`` fits in an unsigned ``bits``-wide field."""
    if not 0 <= value < (1 << bits):
        raise ConfigError(f"{name} out of range for {bits}-bit field: {value}")
    return value


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division (used pervasively by resource models)."""
    if denominator <= 0:
        raise ConfigError("denominator must be positive")
    return -(-numerator // denominator)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    return max(low, min(high, value))


def write_text_atomic(path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename.

    A reader (or a run killed mid-write) never observes a truncated
    document: the content lands under a temporary name, is flushed and
    fsynced, and only then renamed over the target — ``os.replace`` is
    atomic on POSIX and Windows alike.
    """
    import os
    import tempfile
    from pathlib import Path

    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


DEPRECATION_REMOVAL_VERSION = "2.0"
"""The release in which the legacy ``stats()``-era shims disappear."""


def warn_deprecated(
    old: str, new: str, removal: str = DEPRECATION_REMOVAL_VERSION
) -> None:
    """Emit the standard deprecation warning for a legacy snapshot API.

    Every shim names its replacement *and* the release that removes it,
    so ``flexsfp metrics --fail-on-deprecated`` (and any ``-W error``
    run) can prove nothing internal still depends on the old surface.
    """
    import warnings

    warnings.warn(
        f"{old} is deprecated and will be removed in repro {removal}; "
        f"use {new}",
        DeprecationWarning,
        stacklevel=3,
    )
