"""Link impairments: loss, jitter, corruption, and flapping for fault-path
testing.

The link-health use case (§3) only matters on imperfect links; this
module provides them.  An :class:`ImpairedPort` behaves like a normal
:class:`~repro.sim.link.Port` but applies seeded random loss, jitter,
payload corruption, and duplication to *received* frames, and can be
"flapped" (forced dark) for intervals — the substrate for exercising
fiber-break and flap detection end to end.

On top of the steady-state probabilities, every impairment can also be
applied as a *burst*: a bounded window of elevated loss / bit errors /
corruption / duplication, which is what the fault-injection framework
(:mod:`repro.faults`) schedules from a :class:`~repro.faults.FaultPlan`.

:class:`LossyWire` packages two impaired endpoints into a bump-in-the-wire
segment that can be spliced between any two existing ports — e.g. between
a fleet controller and a switch — impairing both directions without
touching either device.
"""

from __future__ import annotations

import random

from ..errors import ConfigError
from ..packet import Packet
from ..sim.engine import Simulator
from ..sim.link import Port
from ..sim.stats import Counter

# Extra delay separating a duplicated frame from its original when the
# port has no configured jitter (a retransmit-ish gap, not zero).
DUPLICATE_GAP_S = 1e-6


class _Burst:
    """A bounded window of elevated impairment probability."""

    __slots__ = ("until", "probability")

    def __init__(self) -> None:
        self.until = -1.0
        self.probability = 0.0

    def raise_to(self, now: float, duration_s: float, probability: float) -> None:
        if duration_s <= 0:
            raise ConfigError("burst duration must be positive")
        if not 0.0 <= probability <= 1.0:
            raise ConfigError("burst probability must be in [0, 1]")
        self.until = max(self.until, now + duration_s)
        self.probability = max(self.probability, probability)

    def effective(self, now: float, base: float) -> float:
        return max(base, self.probability) if now < self.until else base


class ImpairedPort(Port):
    """A port whose receive side models an imperfect link.

    * ``loss_probability`` — i.i.d. drop chance per frame.
    * ``jitter_s`` — uniform extra delay in ``[0, jitter_s]`` per frame.
    * ``corrupt_probability`` — chance of flipping a payload byte (mgmt
      frames then fail HMAC authentication; data frames carry bad bytes).
    * ``duplicate_probability`` — chance a frame is delivered twice (the
      duplicate trails the original; replay protection sees it).
    * :meth:`flap` — go dark for a duration (all frames dropped), as a
      fiber disconnect/reconnect does.
    * :meth:`loss_burst` / :meth:`corrupt_burst` / :meth:`duplicate_burst`
      — temporary windows of elevated probability for fault injection.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float = 10e9,
        loss_probability: float = 0.0,
        jitter_s: float = 0.0,
        corrupt_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        seed: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(sim, name, rate_bps=rate_bps, **kwargs)
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigError("loss probability must be in [0, 1)")
        if jitter_s < 0:
            raise ConfigError("jitter must be non-negative")
        if not 0.0 <= corrupt_probability < 1.0:
            raise ConfigError("corrupt probability must be in [0, 1)")
        if not 0.0 <= duplicate_probability < 1.0:
            raise ConfigError("duplicate probability must be in [0, 1)")
        self.loss_probability = loss_probability
        self.jitter_s = jitter_s
        self.corrupt_probability = corrupt_probability
        self.duplicate_probability = duplicate_probability
        self._rng = random.Random(seed)
        self._dark_until = -1.0
        self._loss_burst = _Burst()
        self._corrupt_burst = _Burst()
        self._duplicate_burst = _Burst()
        self.impairment_drops = Counter(f"{name}.impairment_drops")
        self.corrupted = Counter(f"{name}.corrupted")
        self.duplicated = Counter(f"{name}.duplicated")
        self.flaps = 0

    def flap(self, duration_s: float) -> None:
        """Take the link dark for ``duration_s`` starting now."""
        if duration_s <= 0:
            raise ConfigError("flap duration must be positive")
        self._dark_until = max(self._dark_until, self.sim.now + duration_s)
        self.flaps += 1

    @property
    def is_dark(self) -> bool:
        return self.sim.now < self._dark_until

    # ------------------------------------------------------------------
    # Fault-injection windows
    # ------------------------------------------------------------------
    def loss_burst(self, duration_s: float, probability: float = 1.0) -> None:
        """Elevate the loss probability for a bounded window."""
        self._loss_burst.raise_to(self.sim.now, duration_s, probability)

    def corrupt_burst(self, duration_s: float, probability: float = 1.0) -> None:
        """Elevate the corruption probability for a bounded window."""
        self._corrupt_burst.raise_to(self.sim.now, duration_s, probability)

    def duplicate_burst(self, duration_s: float, probability: float = 1.0) -> None:
        """Elevate the duplication probability for a bounded window."""
        self._duplicate_burst.raise_to(self.sim.now, duration_s, probability)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _deliver(self, packet: Packet, size: int | None = None) -> None:
        loss = self._loss_burst.effective(self.sim.now, self.loss_probability)
        if self.is_dark or self._rng.random() < loss:
            self.impairment_drops.count(packet.wire_len)
            return
        dup = self._duplicate_burst.effective(self.sim.now, self.duplicate_probability)
        if dup and self._rng.random() < dup:
            self.duplicated.count(packet.wire_len)
            gap = self.jitter_s if self.jitter_s > 0 else DUPLICATE_GAP_S
            self.sim.schedule(
                self._rng.uniform(0.0, gap) + gap, self._finish_rx, packet.copy()
            )
        if self.jitter_s > 0:
            self.sim.schedule(
                self._rng.uniform(0.0, self.jitter_s), self._finish_rx, packet
            )
            return
        self._finish_rx(packet)

    def _finish_rx(self, packet: Packet) -> None:
        # Darkness is re-checked at delivery time: a frame that arrived
        # before a flap must not surface inside the dark window its jitter
        # (or duplication gap) pushed it into.
        if self.is_dark:
            self.impairment_drops.count(packet.wire_len)
            return
        corrupt = self._corrupt_burst.effective(
            self.sim.now, self.corrupt_probability
        )
        if corrupt and self._rng.random() < corrupt:
            packet = self._corrupt(packet)
        super()._deliver(packet)

    def _corrupt(self, packet: Packet) -> Packet:
        """Flip one payload byte (a bit error the FCS failed to catch)."""
        self.corrupted.count(packet.wire_len)
        mutated = packet.copy()
        if mutated.payload:
            index = self._rng.randrange(len(mutated.payload))
            flipped = mutated.payload[index] ^ (1 << self._rng.randrange(8))
            mutated.payload = (
                mutated.payload[:index]
                + bytes([flipped])
                + mutated.payload[index + 1 :]
            )
        return mutated


class LossyWire:
    """A two-ended impaired segment spliced between two existing ports.

    ``wire.a`` and ``wire.b`` are :class:`ImpairedPort` endpoints; frames
    received on one endpoint are re-sent out the other, so both directions
    traverse the configured impairments.  Connect ``wire.a`` to one device
    and ``wire.b`` to the other::

        wire = LossyWire(sim, "mgmt", loss_probability=0.2, seed=9)
        controller.port.connect(wire.a)
        wire.b.connect(switch.external_port(0))
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float = 1e9,
        loss_probability: float = 0.0,
        jitter_s: float = 0.0,
        corrupt_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        seed: int = 1,
    ) -> None:
        self.sim = sim
        self.name = name
        self.a = ImpairedPort(
            sim,
            f"{name}.a",
            rate_bps=rate_bps,
            loss_probability=loss_probability,
            jitter_s=jitter_s,
            corrupt_probability=corrupt_probability,
            duplicate_probability=duplicate_probability,
            seed=seed,
        )
        self.b = ImpairedPort(
            sim,
            f"{name}.b",
            rate_bps=rate_bps,
            loss_probability=loss_probability,
            jitter_s=jitter_s,
            corrupt_probability=corrupt_probability,
            duplicate_probability=duplicate_probability,
            seed=seed + 1,
        )
        self.a.attach(lambda port, packet: self.b.send(packet))
        self.b.attach(lambda port, packet: self.a.send(packet))

    @property
    def endpoints(self) -> tuple[ImpairedPort, ImpairedPort]:
        return (self.a, self.b)

    def flap(self, duration_s: float) -> None:
        """Take both directions dark for ``duration_s``."""
        for endpoint in self.endpoints:
            endpoint.flap(duration_s)

    def loss_burst(self, duration_s: float, probability: float = 1.0) -> None:
        for endpoint in self.endpoints:
            endpoint.loss_burst(duration_s, probability)

    def corrupt_burst(self, duration_s: float, probability: float = 1.0) -> None:
        for endpoint in self.endpoints:
            endpoint.corrupt_burst(duration_s, probability)

    def duplicate_burst(self, duration_s: float, probability: float = 1.0) -> None:
        for endpoint in self.endpoints:
            endpoint.duplicate_burst(duration_s, probability)

    def stats(self) -> dict[str, object]:
        return {
            "drops": self.a.impairment_drops.packets + self.b.impairment_drops.packets,
            "corrupted": self.a.corrupted.packets + self.b.corrupted.packets,
            "duplicated": self.a.duplicated.packets + self.b.duplicated.packets,
            "flaps": self.a.flaps + self.b.flaps,
        }
