"""Link impairments: loss, jitter, and flapping for fault-path testing.

The link-health use case (§3) only matters on imperfect links; this
module provides them.  An :class:`ImpairedPort` behaves like a normal
:class:`~repro.sim.link.Port` but applies seeded random loss and jitter
to *received* frames, and can be "flapped" (forced dark) for intervals —
the substrate for exercising fiber-break and flap detection end to end.
"""

from __future__ import annotations

import random

from ..errors import ConfigError
from ..packet import Packet
from ..sim.engine import Simulator
from ..sim.link import Port
from ..sim.stats import Counter


class ImpairedPort(Port):
    """A port whose receive side models an imperfect link.

    * ``loss_probability`` — i.i.d. drop chance per frame.
    * ``jitter_s`` — uniform extra delay in ``[0, jitter_s]`` per frame.
    * :meth:`flap` — go dark for a duration (all frames dropped), as a
      fiber disconnect/reconnect does.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float = 10e9,
        loss_probability: float = 0.0,
        jitter_s: float = 0.0,
        seed: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(sim, name, rate_bps=rate_bps, **kwargs)
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigError("loss probability must be in [0, 1)")
        if jitter_s < 0:
            raise ConfigError("jitter must be non-negative")
        self.loss_probability = loss_probability
        self.jitter_s = jitter_s
        self._rng = random.Random(seed)
        self._dark_until = -1.0
        self.impairment_drops = Counter(f"{name}.impairment_drops")
        self.flaps = 0

    def flap(self, duration_s: float) -> None:
        """Take the link dark for ``duration_s`` starting now."""
        if duration_s <= 0:
            raise ConfigError("flap duration must be positive")
        self._dark_until = max(self._dark_until, self.sim.now + duration_s)
        self.flaps += 1

    @property
    def is_dark(self) -> bool:
        return self.sim.now < self._dark_until

    def _deliver(self, packet: Packet) -> None:
        if self.is_dark or self._rng.random() < self.loss_probability:
            self.impairment_drops.count(packet.wire_len)
            return
        if self.jitter_s > 0:
            self.sim.schedule(
                self._rng.uniform(0.0, self.jitter_s), super()._deliver, packet
            )
            return
        super()._deliver(packet)
