"""Traffic generators: CBR, Poisson, and IMIX sources.

Sources push packets into a :class:`~repro.sim.link.Port` on a schedule.
Rates are specified as *wire* rates (including preamble/FCS/IFG), so a
``rate_bps=10e9`` CBR source with 60-byte frames reproduces the 14.88 Mpps
worst case a 10GbE line-rate test implies.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..errors import ConfigError
from ..packet import Packet, make_udp
from ..sim.engine import Simulator
from ..sim.link import Port
from ..sim.mac import frame_wire_bytes
from ..sim.stats import Counter

PacketFactory = Callable[[int, int], Packet]
"""Builds packet ``i`` with the requested frame length (no FCS)."""

# Standard simple IMIX: 7×64 B, 4×576 B, 1×1518 B (sizes incl. FCS).
IMIX_MIX: tuple[tuple[int, int], ...] = ((60, 7), (572, 4), (1514, 1))


def default_factory(
    src_ip: str = "10.0.0.1",
    dst_ip: str = "10.0.0.2",
    sport: int = 10_000,
    dport: int = 20_000,
) -> PacketFactory:
    """UDP packets of the requested size from a fixed flow."""

    def build(index: int, frame_len: int) -> Packet:
        payload_len = max(0, frame_len - 14 - 20 - 8)
        return make_udp(
            src_ip=src_ip,
            dst_ip=dst_ip,
            sport=sport,
            dport=dport,
            payload=bytes(payload_len),
        )

    return build


class TrafficSource:
    """Base: sends packets from ``start`` until ``count`` or ``stop``."""

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        factory: PacketFactory | None = None,
        count: int | None = None,
        start: float = 0.0,
        stop: float | None = None,
        name: str = "source",
    ) -> None:
        self.sim = sim
        self.port = port
        self.factory = factory if factory is not None else default_factory()
        self.count = count
        self.stop = stop
        self.name = name
        self.sent = Counter(f"{name}.sent")
        self.send_failures = Counter(f"{name}.send_failures")
        self._index = 0
        sim.schedule_at(max(start, sim.now), self._tick)

    # Subclasses define the size of the next frame and the gap after it.
    def _next_frame_len(self) -> int:
        raise NotImplementedError

    def _interval_for(self, frame_len: int) -> float:
        raise NotImplementedError

    def _done(self) -> bool:
        if self.count is not None and self._index >= self.count:
            return True
        return self.stop is not None and self.sim.now >= self.stop

    def _tick(self) -> None:
        if self._done():
            return
        frame_len = self._next_frame_len()
        packet = self.factory(self._index, frame_len)
        self._index += 1
        if self.port.send(packet):
            self.sent.count(packet.wire_len)
        else:
            self.send_failures.count(packet.wire_len)
        self.sim.schedule(self._interval_for(frame_len), self._tick)


class CbrSource(TrafficSource):
    """Constant bit rate: fixed frame size, fixed inter-departure time."""

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        rate_bps: float,
        frame_len: int = 1514,
        **kwargs,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigError("CBR rate must be positive")
        self.rate_bps = rate_bps
        self.frame_len = frame_len
        super().__init__(sim, port, **kwargs)

    def _next_frame_len(self) -> int:
        return self.frame_len

    def _interval_for(self, frame_len: int) -> float:
        return frame_wire_bytes(frame_len) * 8 / self.rate_bps


class PoissonSource(TrafficSource):
    """Poisson arrivals at a target average wire rate (seeded RNG)."""

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        rate_bps: float,
        frame_len: int = 1514,
        seed: int = 1,
        **kwargs,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigError("Poisson rate must be positive")
        self.rate_bps = rate_bps
        self.frame_len = frame_len
        self._rng = random.Random(seed)
        super().__init__(sim, port, **kwargs)

    def _next_frame_len(self) -> int:
        return self.frame_len

    def _interval_for(self, frame_len: int) -> float:
        mean = frame_wire_bytes(frame_len) * 8 / self.rate_bps
        return self._rng.expovariate(1.0 / mean)


class ImixSource(TrafficSource):
    """IMIX frame-size mix at a target aggregate wire rate."""

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        rate_bps: float,
        mix: Sequence[tuple[int, int]] = IMIX_MIX,
        seed: int = 1,
        **kwargs,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigError("IMIX rate must be positive")
        if not mix or any(weight <= 0 for _, weight in mix):
            raise ConfigError("IMIX mix needs positive weights")
        self.rate_bps = rate_bps
        self.mix = tuple(mix)
        self._rng = random.Random(seed)
        self._sizes = [size for size, _ in self.mix]
        self._weights = [weight for _, weight in self.mix]
        super().__init__(sim, port, **kwargs)

    def _next_frame_len(self) -> int:
        return self._rng.choices(self._sizes, weights=self._weights, k=1)[0]

    def _interval_for(self, frame_len: int) -> float:
        return frame_wire_bytes(frame_len) * 8 / self.rate_bps
