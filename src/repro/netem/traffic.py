"""Traffic generators: CBR, Poisson, and IMIX sources.

Sources push packets into a :class:`~repro.sim.link.Port` on a schedule.
Rates are specified as *wire* rates (including preamble/FCS/IFG), so a
``rate_bps=10e9`` CBR source with 60-byte frames reproduces the 14.88 Mpps
worst case a 10GbE line-rate test implies.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigError
from ..packet import Packet, make_udp
from ..sim.engine import Simulator
from ..sim.link import Port
from ..sim.mac import frame_wire_bytes
from ..sim.stats import Counter

PacketFactory = Callable[[int, int], Packet]
"""Builds packet ``i`` with the requested frame length (no FCS)."""

# Standard simple IMIX: 7×64 B, 4×576 B, 1×1518 B (sizes incl. FCS).
IMIX_MIX: tuple[tuple[int, int], ...] = ((60, 7), (572, 4), (1514, 1))


def default_factory(
    src_ip: str = "10.0.0.1",
    dst_ip: str = "10.0.0.2",
    sport: int = 10_000,
    dport: int = 20_000,
) -> PacketFactory:
    """UDP packets of the requested size from a fixed flow."""

    def build(index: int, frame_len: int) -> Packet:
        payload_len = max(0, frame_len - 14 - 20 - 8)
        return make_udp(
            src_ip=src_ip,
            dst_ip=dst_ip,
            sport=sport,
            dport=dport,
            payload=bytes(payload_len),
        )

    return build


class TrafficSource:
    """Base: sends packets from ``start`` until ``count`` or ``stop``.

    ``burst`` > 1 is a simulation-speed knob for coalescing ports: each
    scheduled tick emits up to that many frames as future-dated
    reservations (``Port.send_at``).  Departure times are accumulated with
    the same float additions the per-frame tick chain performs, so the
    emitted traffic — timestamps, RNG draw order, drop decisions — is
    bit-identical to ``burst=1``; only the event count shrinks.
    """

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        factory: PacketFactory | None = None,
        count: int | None = None,
        start: float = 0.0,
        stop: float | None = None,
        name: str = "source",
        burst: int = 1,
    ) -> None:
        if burst < 1:
            raise ConfigError(f"burst must be >= 1, got {burst}")
        if burst > 1 and not port.coalesce:
            raise ConfigError("burst emission requires a coalescing port")
        self.sim = sim
        self.port = port
        self.factory = factory if factory is not None else default_factory()
        self.count = count
        self.stop = stop
        self.name = name
        self.burst = burst
        self.sent = Counter(f"{name}.sent")
        self.send_failures = Counter(f"{name}.send_failures")
        self._index = 0
        sim.schedule_at(max(start, sim.now), self._tick)

    # Subclasses define the size of the next frame and the gap after it.
    def _next_frame_len(self) -> int:
        raise NotImplementedError

    def _interval_for(self, frame_len: int) -> float:
        raise NotImplementedError

    def _done_at(self, t: float) -> bool:
        if self.count is not None and self._index >= self.count:
            return True
        return self.stop is not None and t >= self.stop

    def _done(self) -> bool:
        return self._done_at(self.sim.now)

    def _tick(self) -> None:
        t = self.sim.now
        port = self.port
        # Emission is the hottest loop in traffic-heavy simulations: bind
        # the coalesced reservation path directly and inline the stop
        # checks; semantics are identical to send_at/_done_at.
        if port.coalesce and port._peer is not None:
            send = port._reserve_tx
        else:
            send = port.send_at
        factory = self.factory
        sent = self.sent
        count = self.count
        stop = self.stop
        for _ in range(self.burst):
            if (count is not None and self._index >= count) or (
                stop is not None and t >= stop
            ):
                return
            frame_len = self._next_frame_len()
            packet = factory(self._index, frame_len)
            self._index += 1
            size = packet.wire_len
            if send(packet, t, size):
                sent.packets += 1
                sent.bytes += size
            else:
                self.send_failures.count(size)
            t = t + self._interval_for(frame_len)
        self.sim.schedule_at(t, self._tick)


class CbrSource(TrafficSource):
    """Constant bit rate: fixed frame size, fixed inter-departure time.

    With ``template_burst=True`` (the compiled engine's emission mode) each
    tick builds ONE template packet and hands the whole burst to
    :meth:`~repro.sim.link.Port.send_burst` as a struct-of-arrays vector
    of departure times.  Departure timestamps come from the same chained
    float additions as the per-frame tick, so timing is bit-identical;
    the factory is called once per burst, so this mode requires a factory
    whose output does not depend on the packet index.
    """

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        rate_bps: float,
        frame_len: int = 1514,
        template_burst: bool = False,
        **kwargs,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigError("CBR rate must be positive")
        self.rate_bps = rate_bps
        self.frame_len = frame_len
        self.template_burst = template_burst
        super().__init__(sim, port, **kwargs)
        if template_burst and not port.coalesce:
            raise ConfigError("template_burst requires a coalescing port")

    def _next_frame_len(self) -> int:
        return self.frame_len

    def _interval_for(self, frame_len: int) -> float:
        return frame_wire_bytes(frame_len) * 8 / self.rate_bps

    def _tick(self) -> None:
        if not self.template_burst:
            super()._tick()
            return
        t = self.sim.now
        if self.stop is not None and t >= self.stop:
            return
        n = self.burst
        if self.count is not None:
            remaining = self.count - self._index
            if remaining <= 0:
                return
            if remaining < n:
                n = remaining
        interval = self._interval_for(self.frame_len)
        # np.add.accumulate is a sequential left fold: entry i reproduces
        # the scalar ``t = t + interval`` chain bit for bit.  The extra
        # trailing entry is the next tick time.
        chain = np.empty(n + 1)
        chain[0] = t
        chain[1:] = interval
        times = np.add.accumulate(chain)
        limit = n
        if self.stop is not None and float(times[n - 1]) >= self.stop:
            limit = int(np.searchsorted(times[:n], self.stop, side="left"))
            if limit == 0:
                return
        template = self.factory(self._index, self.frame_len)
        size = template.wire_len
        self._index += limit
        admitted = self.port.send_burst(template, size, times[:limit])
        self.sent.packets += admitted
        self.sent.bytes += admitted * size
        failed = limit - admitted
        if failed:
            self.send_failures.packets += failed
            self.send_failures.bytes += failed * size
        # The per-frame tick only re-arms after a full burst; a count- or
        # stop-truncated burst is the final one.
        if limit == self.burst and (
            self.count is None or self._index < self.count
        ):
            self.sim.schedule_at(float(times[n]), self._tick)


class PoissonSource(TrafficSource):
    """Poisson arrivals at a target average wire rate (seeded RNG)."""

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        rate_bps: float,
        frame_len: int = 1514,
        seed: int = 1,
        **kwargs,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigError("Poisson rate must be positive")
        self.rate_bps = rate_bps
        self.frame_len = frame_len
        self._rng = random.Random(seed)
        super().__init__(sim, port, **kwargs)

    def _next_frame_len(self) -> int:
        return self.frame_len

    def _interval_for(self, frame_len: int) -> float:
        mean = frame_wire_bytes(frame_len) * 8 / self.rate_bps
        return self._rng.expovariate(1.0 / mean)


class ImixSource(TrafficSource):
    """IMIX frame-size mix at a target aggregate wire rate."""

    def __init__(
        self,
        sim: Simulator,
        port: Port,
        rate_bps: float,
        mix: Sequence[tuple[int, int]] = IMIX_MIX,
        seed: int = 1,
        **kwargs,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigError("IMIX rate must be positive")
        if not mix or any(weight <= 0 for _, weight in mix):
            raise ConfigError("IMIX mix needs positive weights")
        self.rate_bps = rate_bps
        self.mix = tuple(mix)
        self._rng = random.Random(seed)
        self._sizes = [size for size, _ in self.mix]
        self._weights = [weight for _, weight in self.mix]
        super().__init__(sim, port, **kwargs)

    def _next_frame_len(self) -> int:
        return self._rng.choices(self._sizes, weights=self._weights, k=1)[0]

    def _interval_for(self, frame_len: int) -> float:
        return frame_wire_bytes(frame_len) * 8 / self.rate_bps
