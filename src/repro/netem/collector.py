"""Telemetry collector: the analysis endpoint for FlexSFP exports.

The observability applications (flow telemetry, INT sinks, link-health
monitors) emit UDP datagrams toward a collector; this module is that
collector.  It demultiplexes by destination port, decodes each feed, and
maintains aggregate views — per-flow byte totals, per-device hop latency
series, and a fault log — so examples and tests can assert on *insight*,
not just packet delivery.
"""

from __future__ import annotations

import struct
from collections import defaultdict
from dataclasses import dataclass, field

from ..apps.inband import unpack_report
from ..apps.linkhealth import ALERT_PORT, LinkEvent, unpack_alert
from ..apps.telemetry import FlowRecord, unpack_records
from ..errors import ReproError
from ..packet import INTHop, Packet, UDPPort
from ..sim.engine import Simulator
from ..switch.host import Host


@dataclass
class FlowAggregate:
    """Accumulated view of one flow across export intervals."""

    packets: int = 0
    bytes: int = 0
    exports: int = 0

    def merge(self, record: FlowRecord) -> None:
        self.packets += record.packets
        self.bytes += record.bytes
        self.exports += 1


@dataclass
class CollectorState:
    """Everything the collector has learned."""

    flows: dict[tuple[int, int, int, int, int], FlowAggregate] = field(
        default_factory=dict
    )
    flow_exports: int = 0
    int_reports: int = 0
    hops_by_device: dict[int, list[INTHop]] = field(
        default_factory=lambda: defaultdict(list)
    )
    fault_log: list[tuple[int, LinkEvent]] = field(default_factory=list)
    undecodable: int = 0

    def top_flows(self, count: int = 5) -> list[tuple[tuple, FlowAggregate]]:
        """Heaviest flows by bytes."""
        ranked = sorted(self.flows.items(), key=lambda kv: -kv[1].bytes)
        return ranked[:count]

    def faults_of_kind(self, kind: str) -> list[tuple[int, LinkEvent]]:
        return [(dev, e) for dev, e in self.fault_log if e.kind == kind]


class TelemetryCollector(Host):
    """A host that decodes every FlexSFP telemetry feed it receives."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "collector",
        mac: str | int = "02:c0:11:ec:70:01",
        ip: str = "203.0.113.10",
        rate_bps: float = 10e9,
    ) -> None:
        super().__init__(sim, name, mac=mac, ip=ip, rate_bps=rate_bps)
        self.state = CollectorState()
        self.handler = self._decode

    def _decode(self, packet: Packet) -> None:
        udp = packet.udp
        if udp is None:
            return
        try:
            if udp.dport == UDPPort.NETFLOW:
                self._decode_flows(packet)
            elif udp.dport == UDPPort.INT_COLLECTOR:
                self._decode_int(packet)
            elif udp.dport == ALERT_PORT:
                self._decode_alert(packet)
        except (ReproError, ValueError, IndexError, struct.error):
            self.state.undecodable += 1

    def _decode_flows(self, packet: Packet) -> None:
        _, _, records = unpack_records(packet.payload)
        self.state.flow_exports += 1
        for key, record in records:
            aggregate = self.state.flows.setdefault(key, FlowAggregate())
            aggregate.merge(record)

    def _decode_int(self, packet: Packet) -> None:
        device_id, hops = unpack_report(packet.payload)
        self.state.int_reports += 1
        for hop in hops:
            self.state.hops_by_device[hop.device_id].append(hop)

    def _decode_alert(self, packet: Packet) -> None:
        device_id, event = unpack_alert(packet.payload)
        self.state.fault_log.append((device_id, event))

    # Convenience accessors ------------------------------------------------
    @property
    def known_flows(self) -> int:
        return len(self.state.flows)

    def summary(self) -> dict[str, int]:
        return {
            "flow_exports": self.state.flow_exports,
            "flows": self.known_flows,
            "int_reports": self.state.int_reports,
            "faults": len(self.state.fault_log),
            "undecodable": self.state.undecodable,
        }

    def metric_values(self) -> dict[str, float]:
        """Flat :class:`~repro.obs.registry.MetricSource` view.

        Extends the base :class:`Host` metrics with decode aggregates.
        """
        values = super().metric_values()
        for key, value in self.summary().items():
            values[f"decoded.{key}"] = value
        return values
