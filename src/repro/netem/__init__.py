"""Workload generation and telemetry collection."""

from .collector import CollectorState, FlowAggregate, TelemetryCollector
from .flows import FlowSetGenerator, FlowSpec, flow_packets
from .impairments import ImpairedPort, LossyWire
from .traffic import (
    IMIX_MIX,
    CbrSource,
    ImixSource,
    PoissonSource,
    TrafficSource,
    default_factory,
)

__all__ = [
    "CbrSource",
    "CollectorState",
    "FlowAggregate",
    "FlowSetGenerator",
    "FlowSpec",
    "IMIX_MIX",
    "ImixSource",
    "ImpairedPort",
    "LossyWire",
    "PoissonSource",
    "TelemetryCollector",
    "TrafficSource",
    "default_factory",
    "flow_packets",
]
