"""Synthetic flow-level workloads.

Access-network traffic (the §2.1 telecom scenario) is heavy-tailed: most
flows are mice, a few elephants carry most bytes.  :class:`FlowSetGenerator`
produces deterministic, seeded flow descriptors with Pareto sizes and
Zipf-ish endpoint popularity, and can expand them into packet sequences
for the traffic sources.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .._util import int_to_ip
from ..errors import ConfigError
from ..packet import IPProto, Packet, make_tcp, make_udp


@dataclass(frozen=True)
class FlowSpec:
    """One synthetic flow: endpoints, protocol, size, start time."""

    src_ip: str
    dst_ip: str
    proto: int
    sport: int
    dport: int
    total_bytes: int
    start_s: float

    @property
    def is_mouse(self) -> bool:
        return self.total_bytes < 10_000


class FlowSetGenerator:
    """Seeded generator of heavy-tailed flow sets."""

    def __init__(
        self,
        num_subscribers: int = 64,
        subscriber_base: str = "100.64.0.0",
        remote_base: str = "203.0.113.0",
        num_remotes: int = 16,
        mean_flow_bytes: int = 20_000,
        pareto_alpha: float = 1.3,
        udp_fraction: float = 0.3,
        seed: int = 42,
    ) -> None:
        if num_subscribers <= 0 or num_remotes <= 0:
            raise ConfigError("need at least one subscriber and one remote")
        if not 0 <= udp_fraction <= 1:
            raise ConfigError("udp_fraction must be in [0, 1]")
        if pareto_alpha <= 1.0:
            raise ConfigError("pareto_alpha must exceed 1 for a finite mean")
        self.num_subscribers = num_subscribers
        self.num_remotes = num_remotes
        self.mean_flow_bytes = mean_flow_bytes
        self.pareto_alpha = pareto_alpha
        self.udp_fraction = udp_fraction
        self._rng = random.Random(seed)
        self._sub_base = self._ip_int(subscriber_base)
        self._remote_base = self._ip_int(remote_base)

    @staticmethod
    def _ip_int(ip: str) -> int:
        from .._util import ip_to_int

        return ip_to_int(ip)

    def subscriber_ip(self, index: int) -> str:
        return int_to_ip(self._sub_base + index % self.num_subscribers)

    def remote_ip(self, index: int) -> str:
        return int_to_ip(self._remote_base + index % self.num_remotes)

    def _flow_bytes(self) -> int:
        # Pareto with xm chosen so the mean matches mean_flow_bytes.
        alpha = self.pareto_alpha
        xm = self.mean_flow_bytes * (alpha - 1) / alpha
        size = xm / (1.0 - self._rng.random()) ** (1.0 / alpha)
        return max(64, int(size))

    def _zipf_index(self, n: int) -> int:
        # Simple rank-biased pick: rank r with weight 1/(r+1).
        weights = [1.0 / (r + 1) for r in range(n)]
        return self._rng.choices(range(n), weights=weights, k=1)[0]

    def generate(self, num_flows: int, duration_s: float = 1.0) -> list[FlowSpec]:
        """Produce ``num_flows`` flow descriptors over ``duration_s``."""
        flows = []
        for _ in range(num_flows):
            udp = self._rng.random() < self.udp_fraction
            flows.append(
                FlowSpec(
                    src_ip=self.subscriber_ip(self._rng.randrange(self.num_subscribers)),
                    dst_ip=self.remote_ip(self._zipf_index(self.num_remotes)),
                    proto=IPProto.UDP if udp else IPProto.TCP,
                    sport=self._rng.randrange(32_768, 61_000),
                    dport=self._rng.choice((53, 80, 123, 443, 8080))
                    if udp
                    else self._rng.choice((80, 443, 22, 8443)),
                    total_bytes=self._flow_bytes(),
                    start_s=self._rng.random() * duration_s,
                )
            )
        flows.sort(key=lambda flow: flow.start_s)
        return flows


def flow_packets(flow: FlowSpec, mtu_payload: int = 1400) -> list[Packet]:
    """Expand a flow into its packet sequence (full MTU then a tail)."""
    if mtu_payload <= 0:
        raise ConfigError("mtu_payload must be positive")
    packets: list[Packet] = []
    remaining = flow.total_bytes
    seq = 0
    while remaining > 0:
        size = min(mtu_payload, remaining)
        if flow.proto == IPProto.UDP:
            packet = make_udp(
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                sport=flow.sport,
                dport=flow.dport,
                payload=bytes(size),
            )
        else:
            packet = make_tcp(
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                sport=flow.sport,
                dport=flow.dport,
                seq=seq,
                payload=bytes(size),
            )
        packets.append(packet)
        seq += size
        remaining -= size
    return packets
