"""Append-only shard checkpoint journal: kill -9 survivable progress.

A supervised fleet run journals every completed
:class:`~repro.parallel.runner.ShardResult` to a JSON Lines file as soon
as it merges: one header line binding the journal to its resolved
:class:`~repro.obs.scenario.ScenarioSpec` (by canonical digest), then
one ``shard`` record per completion.  ``flexsfp run --resume <journal>``
reloads the file, verifies the spec digest, and re-executes only the
shards that are missing — because shard seeds are a pure function of
(root seed, index), the resumed shards reproduce the exact digests the
uninterrupted run would have.

Crash-safety contract: every append is flushed and fsynced, and the
loader tolerates exactly one trailing partial line (the record a SIGKILL
interrupted mid-write) by discarding it.  Any earlier malformed line is
corruption and raises.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..errors import ConfigError
from ..obs.export import SCHEMA_JOURNAL
from ..obs.scenario import ScenarioSpec
from .runner import ShardResult


def spec_digest(spec: ScenarioSpec) -> str:
    """SHA-256 over the canonical JSON of a (resolved) spec."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _shard_record(result: ShardResult, attempts: int) -> dict:
    record = {"kind": "shard", "attempts": attempts}
    record.update(result.to_dict())
    return record


def _result_from_record(record: dict) -> ShardResult:
    return ShardResult(
        index=int(record["index"]),
        seed=int(record["seed"]),
        digest=str(record["digest"]),
        metrics=dict(record["metrics"]),
        summary=dict(record["summary"]),
        histograms={
            name: {"bounds": list(state["bounds"]), "counts": list(state["counts"])}
            for name, state in record.get("histograms", {}).items()
        },
    )


class ShardJournal:
    """Append-only writer for one run's shard checkpoints.

    ``open_new`` truncates and writes the header; ``open_append``
    attaches to an existing journal (resume continuing into the same
    file) after verifying its header matches the spec being run.
    """

    def __init__(self, path: Path, spec: ScenarioSpec, handle) -> None:
        self.path = path
        self.spec = spec
        self._handle = handle

    # ------------------------------------------------------------------
    @classmethod
    def open_new(cls, path: str | os.PathLike, spec: ScenarioSpec) -> "ShardJournal":
        target = Path(path)
        handle = target.open("w")
        journal = cls(target, spec, handle)
        journal._append(
            {
                "schema": SCHEMA_JOURNAL,
                "spec": spec.to_dict(),
                "spec_digest": spec_digest(spec),
                "shards": spec.shards,
            }
        )
        return journal

    @classmethod
    def open_append(
        cls, path: str | os.PathLike, spec: ScenarioSpec
    ) -> "ShardJournal":
        target = Path(path)
        header_spec, _ = load_journal(target)  # validates header + records
        if spec_digest(header_spec) != spec_digest(spec):
            raise ConfigError(
                f"journal {target} was written for a different spec; "
                "resume must re-run the journalled spec"
            )
        return cls(target, spec, target.open("a"))

    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_shard(self, result: ShardResult, attempts: int = 1) -> None:
        """Checkpoint one completed shard (flushed + fsynced)."""
        self._append(_shard_record(result, attempts))

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "ShardJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_journal(
    path: str | os.PathLike,
) -> tuple[ScenarioSpec, dict[int, ShardResult]]:
    """Read a journal back: its spec and the completed shards by index.

    A shard recorded more than once keeps the last record (a resumed run
    appends into the same file).  One trailing partial line is the
    signature of a killed writer and is dropped; a malformed line
    anywhere else raises :class:`~repro.errors.ConfigError`.
    """
    target = Path(path)
    if not target.is_file():
        raise ConfigError(f"journal {target} does not exist")
    lines = target.read_text().splitlines()
    if not lines:
        raise ConfigError(f"journal {target} is empty")
    records: list[dict] = []
    for number, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if number == len(lines) - 1:
                break  # the record a SIGKILL cut short; progress before it holds
            raise ConfigError(
                f"journal {target} line {number + 1} is corrupt "
                "(not trailing, cannot be a truncated append)"
            ) from None
    if not records:
        raise ConfigError(f"journal {target} has no readable header")
    header = records[0]
    if header.get("schema") != SCHEMA_JOURNAL:
        raise ConfigError(
            f"journal {target} has schema {header.get('schema')!r}, "
            f"expected {SCHEMA_JOURNAL!r}"
        )
    spec = ScenarioSpec.from_dict(header["spec"])
    if spec_digest(spec) != header.get("spec_digest"):
        raise ConfigError(f"journal {target} header digest mismatch")
    completed: dict[int, ShardResult] = {}
    for record in records[1:]:
        if record.get("kind") != "shard":
            raise ConfigError(
                f"journal {target} carries unknown record kind "
                f"{record.get('kind')!r}"
            )
        result = _result_from_record(record)
        if not 0 <= result.index < spec.shards:
            raise ConfigError(
                f"journal {target} shard index {result.index} out of range "
                f"for {spec.shards} shards"
            )
        completed[result.index] = result
    return spec, completed
