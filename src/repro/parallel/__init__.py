"""Sharded fleet-scale simulation: deterministic fan-out, exact fan-in.

The paper's deployment story is a *fleet* of FlexSFP modules, not one;
this package runs N independent scenario shards across OS processes and
merges their metrics into one fleet-wide view that is bit-identical to
the sequential run — per-shard seeds are derived, not drawn, and the
metric merge is a commutative/associative fold.

Execution is *supervised*: each worker carries a heartbeat and an
optional deadline, crashes and hangs cost one bounded deterministic
retry rather than the campaign, completed shards checkpoint to an
append-only journal for ``--resume``, and exhausted retries degrade into
an explicit completeness block instead of silent partial coverage.
"""

from .journal import ShardJournal, load_journal, spec_digest
from .merge import (
    MergeKind,
    classify,
    histogram_percentile,
    merge_histogram_states,
    merge_metrics,
    merge_values,
)
from .runner import (
    SHARD_SEED_LABEL,
    FleetRunResult,
    ShardResult,
    run_shard,
    run_sharded,
    shard_spec,
)
from .seeds import derive_shard_seed, shard_seeds
from .supervisor import (
    Completeness,
    ShardError,
    ShardFailure,
    SupervisorPolicy,
    SupervisorTelemetry,
    run_shard_safe,
    run_supervised,
)

__all__ = [
    "Completeness",
    "FleetRunResult",
    "MergeKind",
    "SHARD_SEED_LABEL",
    "ShardError",
    "ShardFailure",
    "ShardJournal",
    "ShardResult",
    "SupervisorPolicy",
    "SupervisorTelemetry",
    "classify",
    "derive_shard_seed",
    "histogram_percentile",
    "load_journal",
    "merge_histogram_states",
    "merge_metrics",
    "merge_values",
    "run_shard",
    "run_shard_safe",
    "run_sharded",
    "run_supervised",
    "shard_spec",
    "shard_seeds",
    "spec_digest",
]
