"""Sharded fleet-scale simulation: deterministic fan-out, exact fan-in.

The paper's deployment story is a *fleet* of FlexSFP modules, not one;
this package runs N independent scenario shards across OS processes and
merges their metrics into one fleet-wide view that is bit-identical to
the sequential run — per-shard seeds are derived, not drawn, and the
metric merge is a commutative/associative fold.
"""

from .merge import (
    MergeKind,
    classify,
    histogram_percentile,
    merge_histogram_states,
    merge_metrics,
    merge_values,
)
from .runner import (
    SHARD_SEED_LABEL,
    FleetRunResult,
    ShardResult,
    run_shard,
    run_sharded,
    shard_spec,
)
from .seeds import derive_shard_seed, shard_seeds

__all__ = [
    "FleetRunResult",
    "MergeKind",
    "SHARD_SEED_LABEL",
    "ShardResult",
    "classify",
    "derive_shard_seed",
    "histogram_percentile",
    "merge_histogram_states",
    "merge_metrics",
    "merge_values",
    "run_shard",
    "run_sharded",
    "shard_spec",
    "shard_seeds",
]
