"""The shard supervisor: deadlines, retries, checkpoints, graceful loss.

``pool.map`` treats worker processes as infallible: one crash re-raises
an opaque error in the parent, one hang wedges the whole campaign, and a
SIGKILL throws away every completed shard.  The supervisor replaces it
with per-shard lifecycle management in the spirit of the module's own
boot watchdog:

* every shard runs in its own worker process with a **heartbeat** thread
  and an optional **deadline** — a crashed worker (pipe EOF / nonzero
  exit), a straggler past the deadline, a wedged process whose
  heartbeats stop, and a corrupt (unpicklable or wrong-typed) result are
  all detected and killed, never waited on forever;
* every failed shard is **retried** up to a bounded count with
  exponential backoff — retries are bit-identical because shard seeds
  are a pure function of (root seed, index), so a retried shard cannot
  drift from the result the first attempt would have produced;
* every completed shard is **journalled** to an append-only checkpoint
  (:mod:`repro.parallel.journal`), so a killed run resumes by
  re-executing only the missing shards;
* exhausted retries **degrade, not abort**: the run completes, the
  merged artifact carries an explicit :class:`Completeness` block naming
  the failed shards, and callers (the CLI) signal partial coverage with
  a distinct exit code instead of silently pretending the fleet was
  whole.

Worker exceptions surface as structured :class:`ShardError` records —
shard index, seed, attempt, and the full traceback — via
:func:`run_shard_safe`, which wraps :func:`~repro.parallel.runner.
run_shard` for both the in-process and the worker-process paths.

The supervisor itself is orchestration, not simulation: its wall-clock
reads steer process lifecycles only and never touch a digest or a merged
metric, exactly like ``wall_s`` in the unsupervised runner.
"""

from __future__ import annotations

import os
import threading
import time
import traceback as _traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path

from ..config import Settings, get_settings
from ..errors import ConfigError
from ..faults.workers import WorkerFaultPlan
from .runner import (
    FleetRunResult,
    ShardResult,
    _pick_start_method,
    run_shard,
    shard_spec,
)

# Exit code a chaos-killed worker dies with; any nonzero exit without a
# result message is classified as a crash, this one included.
_CHAOS_KILL_EXIT = 23
# Bytes that are not a valid pickle stream: the corrupt-result fault.
_CORRUPT_PAYLOAD = b"flexsfp-corrupt-shard-result"
# Floor on how long a worker may take to send its ready beat before it
# is presumed wedged-at-boot.  ``spawn`` boots a fresh interpreter and
# re-imports the package, which takes seconds on a loaded CI machine —
# a tight heartbeat grace must not misread boot as a wedge.
_BOOT_GRACE_S = 30.0

# Failure kinds the supervisor distinguishes (reasons + telemetry).
FAILURE_CRASH = "crash"
FAILURE_TIMEOUT = "timeout"
FAILURE_HUNG = "hung"
FAILURE_CORRUPT = "corrupt"
FAILURE_EXCEPTION = "exception"


# ----------------------------------------------------------------------
# Structured failures (satellite: no more opaque Pool re-raise)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardError:
    """One failed shard attempt, reduced to plain picklable data."""

    index: int
    seed: int
    attempt: int
    kind: str
    message: str
    traceback: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "attempt": self.attempt,
            "kind": self.kind,
            "message": self.message,
            "traceback": self.traceback,
        }


def run_shard_safe(
    task: tuple, attempt: int = 1, inject: Exception | None = None
) -> ShardResult | ShardError:
    """Execute one shard; exceptions become :class:`ShardError` records.

    Top-level (picklable) like :func:`~repro.parallel.runner.run_shard`,
    which it wraps: a worker that raises reports *which* shard failed,
    under *which* seed, with the full traceback — instead of the
    exception surfacing as an opaque re-raise in the parent.  ``inject``
    lets the worker-chaos harness raise deterministically inside the
    guarded region.
    """
    spec, index = task
    seed = shard_spec(spec, index).seed
    try:
        if inject is not None:
            raise inject
        return run_shard(task)
    except Exception as exc:  # noqa: BLE001 - the whole point is capture
        return ShardError(
            index=index,
            seed=seed,
            attempt=attempt,
            kind=FAILURE_EXCEPTION,
            message=f"{type(exc).__name__}: {exc}",
            traceback=_traceback.format_exc(),
        )


# ----------------------------------------------------------------------
# Policy + completeness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisorPolicy:
    """Supervision knobs: deadline, heartbeat cadence, retry budget."""

    shard_timeout_s: float | None = None
    max_retries: int = 2
    backoff_s: float = 0.05
    heartbeat_s: float = 0.25
    heartbeat_misses: int = 20
    poll_s: float = 0.05

    def __post_init__(self) -> None:
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ConfigError(
                f"shard timeout must be positive: {self.shard_timeout_s}"
            )
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_s < 0:
            raise ConfigError(f"backoff must be >= 0: {self.backoff_s}")
        if self.heartbeat_s <= 0 or self.heartbeat_misses < 1 or self.poll_s <= 0:
            raise ConfigError("heartbeat/poll settings must be positive")

    @classmethod
    def from_settings(cls, settings: Settings) -> "SupervisorPolicy":
        return cls(
            shard_timeout_s=settings.shard_timeout_s,
            max_retries=settings.max_retries,
            backoff_s=settings.retry_backoff_s,
        )

    def backoff_for(self, attempt: int) -> float:
        """Deterministic exponential backoff before retry ``attempt + 1``."""
        return self.backoff_s * (2 ** (attempt - 1))

    @property
    def heartbeat_grace_s(self) -> float:
        return self.heartbeat_s * self.heartbeat_misses


@dataclass(frozen=True)
class ShardFailure:
    """One shard that exhausted its retry budget."""

    index: int
    seed: int
    attempts: int
    reasons: tuple[str, ...]
    last_error: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "attempts": self.attempts,
            "reasons": list(self.reasons),
            "last_error": self.last_error,
        }


@dataclass(frozen=True)
class Completeness:
    """Explicit coverage accounting for a supervised run.

    ``ok`` means every shard completed; anything less is carried here —
    never silently dropped from the merged artifact.
    """

    shards: int
    completed: int
    failed: tuple[ShardFailure, ...] = ()
    resumed: tuple[int, ...] = ()
    retries: int = 0

    @property
    def ok(self) -> bool:
        return not self.failed and self.completed == self.shards

    @property
    def failed_indices(self) -> tuple[int, ...]:
        return tuple(failure.index for failure in self.failed)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "shards": self.shards,
            "completed": self.completed,
            "failed": [failure.to_dict() for failure in self.failed],
            "failed_indices": list(self.failed_indices),
            "resumed": list(self.resumed),
            "retries": self.retries,
        }


class SupervisorTelemetry:
    """Supervision counters as a :class:`~repro.obs.registry.MetricSource`.

    Register under a prefix (``fleet.supervisor`` by convention) or read
    the snapshot straight off :attr:`FleetRunResult.supervisor`.
    """

    _FIELDS = (
        "launched",
        "completed",
        "retries",
        "crashes",
        "stragglers",
        "hangs",
        "corrupt_results",
        "worker_errors",
        "resumed",
        "failed",
    )

    def __init__(self) -> None:
        for name in self._FIELDS:
            setattr(self, name, 0)

    def count_failure(self, kind: str) -> None:
        counter = {
            FAILURE_CRASH: "crashes",
            FAILURE_TIMEOUT: "stragglers",
            FAILURE_HUNG: "hangs",
            FAILURE_CORRUPT: "corrupt_results",
            FAILURE_EXCEPTION: "worker_errors",
        }[kind]
        setattr(self, counter, getattr(self, counter) + 1)

    def metric_values(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self._FIELDS}


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _supervised_worker(conn, task, attempt, heartbeat_s, fault) -> None:
    """Worker entry point: heartbeat, self-applied chaos, safe execution.

    Top-level so every start method can import it; ``conn`` is the send
    end of the shard's pipe.  The heartbeat thread shares the connection
    with the result send under one lock — interleaved writes would be a
    self-inflicted corrupt result.
    """
    _spec, index = task
    send_lock = threading.Lock()
    stop = threading.Event()

    # Ready signal: the parent starts the shard deadline at this first
    # beat, so interpreter boot (seconds under ``spawn``) never counts
    # against the shard's work budget.  Even a stalled worker sends it —
    # the stall fault models a process that booted and *then* wedged.
    with send_lock:
        try:
            conn.send(("beat", None))
        except (OSError, ValueError):
            return

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            with send_lock:
                if stop.is_set():
                    return
                try:
                    conn.send(("beat", None))
                except (OSError, ValueError):
                    return

    if fault is None or fault.kind != "worker_stall":
        threading.Thread(target=_beat, daemon=True).start()

    inject: Exception | None = None
    if fault is not None:
        if fault.kind == "worker_kill":
            os._exit(_CHAOS_KILL_EXIT)
        if fault.kind in ("worker_hang", "worker_stall"):
            time.sleep(fault.hang_s)
            os._exit(_CHAOS_KILL_EXIT)  # unreachable under supervision
        if fault.kind == "worker_corrupt":
            stop.set()
            with send_lock:
                conn.send_bytes(_CORRUPT_PAYLOAD)
            conn.close()
            return
        if fault.kind == "worker_raise":
            inject = RuntimeError(
                f"injected worker_raise fault (shard {index}, attempt {attempt})"
            )

    result = run_shard_safe(task, attempt=attempt, inject=inject)
    stop.set()
    with send_lock:
        conn.send(("done", result))
    conn.close()


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass
class _Inflight:
    index: int
    attempt: int
    process: object
    conn: object
    started: float
    last_beat: float
    booted: bool = False


@dataclass
class _PendingAttempt:
    index: int
    attempt: int
    ready_at: float


class _ShardLedger:
    """Per-shard attempt bookkeeping shared by both execution paths."""

    def __init__(
        self,
        resolved,
        policy: SupervisorPolicy,
        telemetry: SupervisorTelemetry,
        journal,
    ) -> None:
        self.resolved = resolved
        self.policy = policy
        self.telemetry = telemetry
        self.journal = journal
        self.seeds = {
            index: shard_spec(resolved, index).seed
            for index in range(resolved.shards)
        }
        self.completed: dict[int, ShardResult] = {}
        self.failed: dict[int, ShardFailure] = {}
        self.reasons: dict[int, list[str]] = {}

    def record_completion(self, index: int, attempt: int, result: ShardResult) -> None:
        self.completed[index] = result
        self.telemetry.completed += 1
        if self.journal is not None:
            self.journal.append_shard(result, attempts=attempt)

    def record_failure(
        self, index: int, attempt: int, kind: str, detail: str
    ) -> bool:
        """Account one failed attempt; True if the shard may retry."""
        self.telemetry.count_failure(kind)
        self.reasons.setdefault(index, []).append(kind)
        if attempt <= self.policy.max_retries:
            self.telemetry.retries += 1
            return True
        self.telemetry.failed += 1
        self.failed[index] = ShardFailure(
            index=index,
            seed=self.seeds[index],
            attempts=attempt,
            reasons=tuple(self.reasons[index]),
            last_error=detail,
        )
        return False


def _run_pending_inprocess(
    ledger: _ShardLedger, pending: list[int], policy: SupervisorPolicy
) -> None:
    """The workers=1 path: sequential, supervised for errors and retries.

    No processes means no preemption — deadlines and heartbeats do not
    apply here; structured failure capture, bounded retry, and
    checkpointing do.  This is the baseline every parallel supervised run
    must match bit-for-bit.
    """
    for index in pending:
        attempt = 1
        while True:
            outcome = run_shard_safe((ledger.resolved, index), attempt=attempt)
            if isinstance(outcome, ShardResult):
                ledger.record_completion(index, attempt, outcome)
                break
            detail = outcome.message + (
                "\n" + outcome.traceback if outcome.traceback else ""
            )
            if not ledger.record_failure(index, attempt, outcome.kind, detail):
                break
            time.sleep(policy.backoff_for(attempt))
            attempt += 1


def _run_pending_supervised(
    ledger: _ShardLedger,
    pending_indices: list[int],
    workers: int,
    method: str,
    policy: SupervisorPolicy,
    chaos: WorkerFaultPlan | None,
) -> None:
    """Fan pending shards across supervised worker processes."""
    import multiprocessing

    ctx = multiprocessing.get_context(method)
    now = time.monotonic()  # flexsfp: allow(det-wallclock)
    pending = [_PendingAttempt(index, 1, now) for index in pending_indices]
    inflight: dict[object, _Inflight] = {}
    slots = max(1, min(workers, len(pending_indices)))

    def _launch(entry: _PendingAttempt) -> None:
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        fault = chaos.fault_for(entry.index, entry.attempt) if chaos else None
        process = ctx.Process(
            target=_supervised_worker,
            args=(
                send_conn,
                (ledger.resolved, entry.index),
                entry.attempt,
                policy.heartbeat_s,
                fault,
            ),
            daemon=True,
        )
        process.start()
        send_conn.close()
        started = time.monotonic()  # flexsfp: allow(det-wallclock)
        inflight[recv_conn] = _Inflight(
            entry.index, entry.attempt, process, recv_conn, started, started
        )
        ledger.telemetry.launched += 1

    def _reap(flight: _Inflight) -> None:
        del inflight[flight.conn]
        flight.conn.close()
        if flight.process.is_alive():
            flight.process.kill()
        flight.process.join()

    def _attempt_failed(flight: _Inflight, kind: str, detail: str) -> None:
        _reap(flight)
        if ledger.record_failure(flight.index, flight.attempt, kind, detail):
            ready = time.monotonic()  # flexsfp: allow(det-wallclock)
            pending.append(
                _PendingAttempt(
                    flight.index,
                    flight.attempt + 1,
                    ready + policy.backoff_for(flight.attempt),
                )
            )

    while pending or inflight:
        now = time.monotonic()  # flexsfp: allow(det-wallclock)
        # Fill free slots with attempts whose backoff has elapsed.
        pending.sort(key=lambda entry: (entry.ready_at, entry.index))
        while pending and len(inflight) < slots and pending[0].ready_at <= now:
            _launch(pending.pop(0))
        if not inflight:
            # Everything runnable is backing off; sleep to the first one.
            time.sleep(max(0.0, pending[0].ready_at - now))
            continue

        for conn in _wait_connections(list(inflight), timeout=policy.poll_s):
            flight = inflight[conn]
            try:
                message = conn.recv()
            except EOFError:
                code = flight.process.exitcode
                _attempt_failed(
                    flight,
                    FAILURE_CRASH,
                    f"worker exited without a result (exitcode {code})",
                )
                continue
            except Exception as exc:  # noqa: BLE001 - garbage on the pipe
                _attempt_failed(
                    flight,
                    FAILURE_CORRUPT,
                    f"undecodable worker message: {type(exc).__name__}: {exc}",
                )
                continue
            if (
                not isinstance(message, tuple)
                or len(message) != 2
                or message[0] not in ("beat", "done")
            ):
                _attempt_failed(
                    flight, FAILURE_CORRUPT, f"malformed worker message: {message!r}"
                )
                continue
            tag, payload = message
            if tag == "beat":
                beat = time.monotonic()  # flexsfp: allow(det-wallclock)
                flight.last_beat = beat
                if not flight.booted:
                    # First beat = worker ready: the deadline measures
                    # shard work from here, not interpreter boot.
                    flight.booted = True
                    flight.started = beat
                continue
            if isinstance(payload, ShardResult) and payload.index == flight.index:
                _reap(flight)
                ledger.record_completion(flight.index, flight.attempt, payload)
            elif isinstance(payload, ShardError):
                detail = payload.message + (
                    "\n" + payload.traceback if payload.traceback else ""
                )
                _attempt_failed(flight, payload.kind, detail)
            else:
                _attempt_failed(
                    flight,
                    FAILURE_CORRUPT,
                    f"unexpected result payload: {type(payload).__name__}",
                )

        # Deadline + heartbeat sweep over whatever is still in flight.
        now = time.monotonic()  # flexsfp: allow(det-wallclock)
        for flight in list(inflight.values()):
            if (
                policy.shard_timeout_s is not None
                and now - flight.started > policy.shard_timeout_s
            ):
                _attempt_failed(
                    flight,
                    FAILURE_TIMEOUT,
                    f"shard exceeded its {policy.shard_timeout_s:.3f}s deadline",
                )
            elif (
                flight.booted
                and now - flight.last_beat > policy.heartbeat_grace_s
            ):
                _attempt_failed(
                    flight,
                    FAILURE_HUNG,
                    "no heartbeat for "
                    f"{policy.heartbeat_grace_s:.3f}s; worker presumed wedged",
                )
            elif not flight.booted and now - flight.started > max(
                policy.heartbeat_grace_s, _BOOT_GRACE_S
            ):
                _attempt_failed(
                    flight,
                    FAILURE_HUNG,
                    "worker never became ready; presumed wedged at boot",
                )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_supervised(
    spec,
    workers: int | None = None,
    start_method: str | None = None,
    *,
    policy: SupervisorPolicy | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: str | os.PathLike | None = None,
    chaos: WorkerFaultPlan | None = None,
) -> FleetRunResult:
    """Run every shard of ``spec`` under supervision and merge the results.

    The result-bearing contract of :func:`~repro.parallel.runner.
    run_sharded` is unchanged — merged metrics and per-shard digests are
    a pure function of the resolved spec; supervision, worker count, and
    chaos (given retries remain) never show through.  On top of it:

    * ``policy`` bounds each shard (deadline, heartbeat, retries);
    * ``checkpoint`` journals completions for crash recovery;
    * ``resume`` preloads a journal and re-runs only missing shards
      (and keeps journalling into the same file unless ``checkpoint``
      redirects it);
    * ``chaos`` injects deterministic worker faults (tests/benchmarks).

    Shards whose retries are exhausted are reported in the returned
    :class:`Completeness` block; the run itself always completes.
    """
    from .journal import ShardJournal, load_journal, spec_digest
    from .merge import merge_histogram_states, merge_metrics

    settings = get_settings()
    if workers is None:
        workers = settings.workers if settings.workers is not None else 1
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if policy is None:
        policy = SupervisorPolicy.from_settings(settings)
    resolved = spec.resolved(settings)

    telemetry = SupervisorTelemetry()
    preloaded: dict[int, ShardResult] = {}
    resumed_indices: tuple[int, ...] = ()
    if resume is not None:
        journal_spec, preloaded = load_journal(resume)
        if spec_digest(journal_spec) != spec_digest(resolved):
            raise ConfigError(
                f"journal {Path(resume)} records a different spec than the "
                "one being run; pass the journalled spec (the CLI's --resume "
                "does this automatically)"
            )
        for index, result in preloaded.items():
            expected = shard_spec(resolved, index).seed
            if result.seed != expected:
                raise ConfigError(
                    f"journal shard {index} seed {result.seed} does not match "
                    f"the derived seed {expected}"
                )
        resumed_indices = tuple(sorted(preloaded))
        telemetry.resumed = len(resumed_indices)
        if checkpoint is None:
            checkpoint = resume

    journal = None
    if checkpoint is not None:
        if resume is not None and Path(checkpoint) == Path(resume):
            journal = ShardJournal.open_append(checkpoint, resolved)
        else:
            journal = ShardJournal.open_new(checkpoint, resolved)
            for index in sorted(preloaded):
                journal.append_shard(preloaded[index], attempts=1)

    ledger = _ShardLedger(resolved, policy, telemetry, journal)
    ledger.completed.update(preloaded)
    pending = [i for i in range(resolved.shards) if i not in preloaded]

    started = time.perf_counter()  # flexsfp: allow(det-wallclock)
    try:
        if pending:
            # The in-process baseline keeps the historical fast path for
            # single-worker/single-shard runs; chaos always exercises real
            # worker processes (an in-process kill would be suicide).
            inprocess = (workers == 1 or resolved.shards == 1) and chaos is None
            if inprocess:
                _run_pending_inprocess(ledger, pending, policy)
            else:
                method = _pick_start_method(
                    start_method
                    if start_method is not None
                    else settings.start_method
                )
                _run_pending_supervised(
                    ledger, pending, workers, method, policy, chaos
                )
    finally:
        if journal is not None:
            journal.close()
    wall_s = time.perf_counter() - started  # flexsfp: allow(det-wallclock)

    results = sorted(ledger.completed.values(), key=lambda shard: shard.index)
    completeness = Completeness(
        shards=resolved.shards,
        completed=len(results),
        failed=tuple(
            ledger.failed[index] for index in sorted(ledger.failed)
        ),
        resumed=resumed_indices,
        retries=telemetry.retries,
    )
    return FleetRunResult(
        spec=resolved,
        workers=workers,
        shards=tuple(results),
        merged_metrics=merge_metrics(shard.metrics for shard in results),
        merged_histograms=merge_histogram_states(
            shard.histograms for shard in results
        ),
        wall_s=wall_s,
        completeness=completeness,
        supervisor=telemetry.metric_values(),
    )


__all__ = [
    "Completeness",
    "FAILURE_CRASH",
    "FAILURE_CORRUPT",
    "FAILURE_EXCEPTION",
    "FAILURE_HUNG",
    "FAILURE_TIMEOUT",
    "ShardError",
    "ShardFailure",
    "SupervisorPolicy",
    "SupervisorTelemetry",
    "run_shard_safe",
    "run_supervised",
]
