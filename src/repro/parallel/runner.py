"""Sharded fleet-scale scenario execution.

A fleet run partitions a workload of ``spec.shards`` independent
scenario instances — each with its own simulator, module(s), links,
traffic, and metrics registry — across ``workers`` OS processes.  Each
shard runs under a seed derived deterministically from the root seed
(:func:`~repro.parallel.seeds.derive_shard_seed`), serializes its
metric snapshot, summary, histogram states and digest back to the
parent as plain picklable data, and the parent folds the shard results
in shard-index order.  Because the merge is commutative/associative and
the fold order is pinned, a K-worker run is bit-identical to the
sequential run of the same shards.

Workers prefer the ``fork`` start method where the platform offers it
(shards inherit the imported interpreter for free); ``spawn`` works the
same, just slower to start.  Nothing in a shard touches shared state:
the scenario spec is resolved — env knobs folded in — *once in the
parent*, so a worker never reads the environment.

Execution itself lives in :mod:`repro.parallel.supervisor`: every worker
runs under a shard supervisor (deadlines, heartbeats, bounded
deterministic retry, checkpoint journalling) rather than a bare pool, so
a crashed or hung worker costs one retry, never the campaign.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ConfigError
from ..obs.registry import MetricValue
from ..obs.scenario import ScenarioSpec
from .merge import HistogramState
from .seeds import derive_shard_seed

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .supervisor import Completeness

SHARD_SEED_LABEL = "shard"


@dataclass(frozen=True)
class ShardResult:
    """One shard's results, reduced to plain picklable data."""

    index: int
    seed: int
    digest: str
    metrics: dict[str, MetricValue]
    summary: dict
    histograms: dict[str, HistogramState] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "digest": self.digest,
            "metrics": dict(self.metrics),
            "summary": dict(self.summary),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


@dataclass(frozen=True)
class FleetRunResult:
    """A complete fleet run: per-shard results plus the merged view.

    ``completeness`` / ``supervisor`` are populated by the supervised
    runner: explicit coverage accounting (failed shard indices, attempts,
    reasons, resumed shards) and the supervision counters.  A run is only
    ``ok`` when every shard completed — a partial merge never pretends to
    be a full one.
    """

    spec: ScenarioSpec
    workers: int
    shards: tuple[ShardResult, ...]
    merged_metrics: dict[str, MetricValue]
    merged_histograms: dict[str, HistogramState]
    wall_s: float
    completeness: "Completeness | None" = None
    supervisor: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.completeness is None or self.completeness.ok

    @property
    def digests(self) -> tuple[str, ...]:
        """Per-shard digests in shard order (the replay fingerprint)."""
        return tuple(shard.digest for shard in self.shards)

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "workers": self.workers,
            "shards": [shard.to_dict() for shard in self.shards],
            "digests": list(self.digests),
            "merged_metrics": dict(self.merged_metrics),
            "merged_histograms": {
                k: dict(v) for k, v in self.merged_histograms.items()
            },
            "wall_s": self.wall_s,
            "completeness": (
                self.completeness.to_dict() if self.completeness else None
            ),
            "supervisor": dict(self.supervisor),
        }

    def to_artifact(self, source: str = "flexsfp-run"):
        """This run as a unified ``flexsfp.run/1`` artifact.

        The artifact (not this raw result dict) is what entry points
        emit and what :func:`repro.artifact.diff_artifacts` consumes.
        """
        from ..artifact import artifact_from_fleet_result  # deferred: cycle

        return artifact_from_fleet_result(self, source=source)


def shard_spec(spec: ScenarioSpec, index: int) -> ScenarioSpec:
    """The single-shard spec that shard ``index`` of ``spec`` executes."""
    seed = derive_shard_seed(spec.seed, index, label=SHARD_SEED_LABEL)
    return spec.with_shard(index, seed)


def run_shard(task: tuple[ScenarioSpec, int]) -> ShardResult:
    """Execute one shard and reduce it to a :class:`ShardResult`.

    Top-level (picklable) so it serves as the worker entry point for
    every ``multiprocessing`` start method.
    """
    spec, index = task
    single = shard_spec(spec, index)
    run = single.run()
    return ShardResult(
        index=index,
        seed=single.seed,
        digest=run.digest(),
        metrics=dict(run.metrics()),
        summary=dict(run.summary or {}),
        histograms=run.histograms(),
    )


def _pick_start_method(requested: str | None) -> str:
    available = multiprocessing.get_all_start_methods()
    if requested is not None:
        if requested not in available:
            raise ConfigError(
                f"start method {requested!r} unavailable on this platform; "
                f"available: {available}"
            )
        return requested
    return "fork" if "fork" in available else available[0]


def run_sharded(
    spec: ScenarioSpec,
    workers: int | None = None,
    start_method: str | None = None,
    **supervision,
) -> FleetRunResult:
    """Run every shard of ``spec`` under supervision and merge the results.

    ``workers=1`` (or one shard) runs in-process — the baseline any
    parallel run must match bit-for-bit.  ``workers=None`` falls back to
    ``FLEXSFP_WORKERS`` (via :class:`~repro.config.Settings`), then 1.
    The returned merged metrics and per-shard digests are a pure
    function of the resolved spec: worker count, start method, and
    completion order never show through.

    Execution is delegated to :func:`repro.parallel.supervisor.
    run_supervised` — per-shard deadlines, crash/hang detection with
    bounded deterministic retry, and checkpoint/resume journalling; the
    keyword-only supervision knobs (``policy``, ``checkpoint``,
    ``resume``, ``chaos``) pass straight through.
    """
    from .supervisor import run_supervised  # deferred: avoids cycle

    return run_supervised(
        spec, workers=workers, start_method=start_method, **supervision
    )
