"""Deterministic per-shard seed derivation.

A fleet run is N independent scenario instances; each shard must see a
seed that is (a) a pure function of the root seed and shard index, so a
re-run — sequential or parallel, any worker count — replays bit-for-bit,
and (b) well-mixed, so shard 0 and shard 1 do not accidentally share
low-entropy RNG streams the way ``root_seed + index`` would.

SHA-256 over a canonical ``"{root}:{label}:{index}"`` string gives both
properties without any dependency on process state, hash randomization
(``PYTHONHASHSEED`` does not affect hashlib), or platform word size.
"""

from __future__ import annotations

import hashlib

from ..errors import ConfigError

# Seeds stay within a signed 63-bit range: every RNG in the repo accepts
# arbitrary ints, but C-backed consumers (and JSON round-trips through
# other tooling) are happiest below 2**63.
_SEED_BITS = 63


def derive_shard_seed(root_seed: int, shard_index: int, label: str = "shard") -> int:
    """Derive the seed for one shard of a fleet run.

    Distinct ``(root_seed, label, shard_index)`` triples map to distinct
    seeds (up to SHA-256 collisions); equal triples always map to the
    same seed, on every platform and in every process.
    """
    if shard_index < 0:
        raise ConfigError(f"shard_index must be >= 0, got {shard_index}")
    material = f"{root_seed}:{label}:{shard_index}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << _SEED_BITS) - 1)


def shard_seeds(root_seed: int, count: int, label: str = "shard") -> tuple[int, ...]:
    """Seeds for every shard of a ``count``-shard run, in shard order."""
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    return tuple(derive_shard_seed(root_seed, i, label=label) for i in range(count))
