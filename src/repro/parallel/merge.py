"""Order-independent merging of per-shard metric snapshots.

Each shard of a fleet run produces a flat ``{dotted.name: value}``
snapshot from its own :class:`~repro.obs.registry.MetricsRegistry`.
Merging them into one fleet-wide view has to be a commutative,
associative fold — the property that makes a K-worker run bit-identical
to the sequential run of the same shards, whatever order results arrive
in.

Every metric name is classified into a :class:`MergeKind` from its leaf
segment and value type:

=========  ==================================================
SUM        integer counters (packets, bytes, events, drops …)
MIN / MAX  leaves literally named ``min`` / ``max``
ANY        booleans (``degraded``, ``healthy`` flags)
EQUAL      strings and configuration-like integer gauges; kept
           only when every shard agrees, dropped otherwise
SKIP       floats (means, rates, percentiles) — a mean of means
           is not a mean, so derived gauges never merge; consult
           the per-shard snapshots or merged histograms instead
=========  ==================================================

Histograms merge exactly: matching bucket bounds, element-wise count
sums.  Percentiles of the *merged* distribution are then well-defined,
unlike percentile-of-percentiles.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from enum import Enum

from ..errors import ConfigError
from ..obs.registry import MetricValue


class MergeKind(str, Enum):
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    ANY = "any"
    EQUAL = "equal"
    SKIP = "skip"


# Leaves that are configuration/identity gauges, not additive counters:
# summing ``boot_slot`` across shards would manufacture nonsense.
_EQUAL_LEAVES = frozenset(
    {"boot_slot", "capacity", "size", "limit", "batch_size", "generation", "seq"}
)
# Float leaves are never merged; these are the common offenders, listed
# here purely for documentation/tests — classification keys on type.
_SKIP_LEAVES = frozenset(
    {"mean", "bits_per_second", "span_s", "p50", "p99", "control_fraction"}
)

# Sentinel for an EQUAL metric whose shards disagree.  Conflict absorbs
# everything (a semilattice top), which is what keeps the fold
# associative: once two shards disagree the metric is dropped no matter
# how the remaining shards are grouped.
_CONFLICT = object()


def classify(name: str, value: MetricValue) -> MergeKind:
    """Merge kind for one metric leaf.  Pure, total, deterministic."""
    leaf = name.rsplit(".", 1)[-1]
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return MergeKind.ANY
    if isinstance(value, str):
        return MergeKind.EQUAL
    if leaf == "min":
        return MergeKind.MIN
    if leaf == "max":
        return MergeKind.MAX
    if isinstance(value, int):
        if leaf in _EQUAL_LEAVES:
            return MergeKind.EQUAL
        return MergeKind.SUM
    return MergeKind.SKIP


def merge_values(name: str, a: MetricValue, b: MetricValue) -> MetricValue | None:
    """Merge two shards' values for one metric name.

    Returns ``None`` for SKIP metrics and the conflict sentinel's
    public face (``None``) is never returned here — EQUAL conflicts are
    handled inside :func:`merge_metrics`, which needs the absorbing
    sentinel to stay associative.  Exposed for property tests.
    """
    merged = _merge_raw(classify(name, a), a, b)
    return None if merged in (None, _CONFLICT) else merged


def _merge_raw(kind: MergeKind, a: object, b: object) -> object:
    if a is _CONFLICT or b is _CONFLICT:
        return _CONFLICT
    if kind is MergeKind.SUM:
        return a + b
    if kind is MergeKind.MIN:
        return min(a, b)
    if kind is MergeKind.MAX:
        return max(a, b)
    if kind is MergeKind.ANY:
        return bool(a or b)
    if kind is MergeKind.EQUAL:
        return a if a == b else _CONFLICT
    return None


def merge_metrics(
    snapshots: Iterable[Mapping[str, MetricValue]],
) -> dict[str, MetricValue]:
    """Fold per-shard snapshots into one fleet-wide view.

    Commutative and associative over the list of snapshots: any
    permutation or grouping of the same snapshots produces the same
    mapping.  SKIP metrics and EQUAL conflicts are absent from the
    result; a name present in only some shards still merges (the fold
    treats absence as identity).
    """
    acc: dict[str, object] = {}
    kinds: dict[str, MergeKind] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            kind = classify(name, value)
            if kind is MergeKind.SKIP:
                continue
            if name not in acc:
                acc[name] = value
                kinds[name] = kind
                continue
            if kinds[name] is not kind:
                # Type drift between shards (e.g. int vs str) — the
                # metric is not meaningfully mergeable; drop it.
                acc[name] = _CONFLICT
                continue
            acc[name] = _merge_raw(kind, acc[name], value)
    return {
        name: value  # type: ignore[misc]
        for name, value in sorted(acc.items())
        if value is not _CONFLICT
    }


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
HistogramState = dict  # {"bounds": [float, ...], "counts": [int, ...]}


def merge_histogram_states(
    states: Iterable[Mapping[str, HistogramState]],
) -> dict[str, HistogramState]:
    """Element-wise merge of per-shard histogram states by name.

    Bucket bounds must match exactly across shards — histograms over
    different bucketings have no exact merge, so mismatch is an error,
    not a silent approximation.
    """
    merged: dict[str, HistogramState] = {}
    for state_map in states:
        for name, state in state_map.items():
            bounds = list(state["bounds"])
            counts = list(state["counts"])
            if name not in merged:
                merged[name] = {"bounds": bounds, "counts": counts}
                continue
            base = merged[name]
            if base["bounds"] != bounds:
                raise ConfigError(
                    f"histogram {name!r}: shard bucket bounds differ; "
                    "cannot merge exactly"
                )
            base["counts"] = [x + y for x, y in zip(base["counts"], counts)]
    return {name: merged[name] for name in sorted(merged)}


def histogram_percentile(state: Mapping[str, Sequence], pct: float) -> float:
    """Percentile of a merged histogram state (upper bucket bound).

    Exactly mirrors :meth:`repro.sim.stats.Histogram.percentile` —
    ``counts`` carries one trailing overflow bucket beyond ``bounds``,
    the threshold is the ceiling of ``total * pct / 100``, and samples
    in the overflow bucket report ``inf``.
    """
    if not 0 < pct <= 100:
        raise ConfigError("percentile must be in (0, 100]")
    bounds = state["bounds"]
    counts = state["counts"]
    total = sum(counts)
    if total == 0:
        return 0.0
    threshold = math.ceil(total * pct / 100)
    seen = 0
    for i, count in enumerate(counts):
        seen += count
        if seen >= threshold:
            return float(bounds[i]) if i < len(bounds) else math.inf
    return math.inf  # pragma: no cover - unreachable
