"""The artifact-diff engine: classified divergence between two runs.

``diff_artifacts`` is the differential oracle the compiled-data-plane
roadmap depends on: given two ``flexsfp.run/1`` artifacts it answers
"are these runs *semantically* identical" — and when they are not, it
says exactly how.  Every divergence is classified:

=================  ====================================================
``metric-value``   the same metric name carries different values
``metric-set``     a semantic metric exists on only one side
``tenant-set``     the runs deployed different tenant sets (names,
                   apps, steering matches, or resource shares in the
                   ``knobs.deployment`` block)
``completeness``   the runs covered different shard sets (failures)
``timing-only``    only volatile fields differ: wall-clock timings,
                   environment fingerprints, profiler output, and
                   execution-strategy counters (flow-cache hits, batch
                   sizes, event-loop counts) that legitimately change
                   between engines without changing what the workload
                   computed
=================  ====================================================

Only the first three kinds make a diff *semantic*; a diff whose entries
are all ``timing-only`` reports two runs as equivalent.  The
execution-strategy name rules (``NONSEMANTIC_*``) encode the fast-path
contract from PR 2: the batched engine must reproduce every verdict,
drop, latency bucket and delivered byte bit-for-bit, while its cache
counters and event counts are *expected* to differ.

Comparing runs with different shard counts is well-defined because shard
seeds are a pure function of (root seed, index): the smaller run's shard
set is a prefix of the larger one's, so the common shards are compared
by semantic digest and the merged (whole-fleet) views — which aggregate
different numbers of instances — are skipped with an explicit note.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from enum import Enum
from typing import Mapping

# ----------------------------------------------------------------------
# Semantic classification of metric names
# ----------------------------------------------------------------------
# Exact names that never carry workload semantics.
NONSEMANTIC_NAMES = frozenset({"sim.events", "wall_s"})
# Prefix families: wall-clock profiler attribution and supervision
# counters (retry counts depend on injected chaos, not on results).
NONSEMANTIC_PREFIXES = ("sim.profile.", "fleet.supervisor.")
# Infix families: flow-cache state, fast-path hit counters, and compiled
# engine counters (recipe hits, deopts, compile wall time) exist only
# when that strategy runs and measure the *strategy*, not the result.
NONSEMANTIC_INFIXES = (".flow_cache.", ".fastpath_hits.", ".compiled.")
# Leaf names that are configuration echoes of the execution engine
# (``.engine`` covers the per-tenant tier echo, ``<module>.tenant.<t>.engine``).
NONSEMANTIC_SUFFIXES = (".batch_size", ".engine")

# Summary keys that mirror the execution strategy rather than results.
NONSEMANTIC_SUMMARY_KEYS = frozenset({"sim_events"})


def is_semantic_metric(name: str) -> bool:
    """True when a metric name carries workload semantics.

    Non-semantic names are engine/timing artifacts: two runs that differ
    only in these are considered equivalent by :func:`diff_artifacts`.
    """
    if name in NONSEMANTIC_NAMES:
        return False
    if name.startswith(NONSEMANTIC_PREFIXES):
        return False
    if name.endswith(NONSEMANTIC_SUFFIXES):
        return False
    return not any(infix in name for infix in NONSEMANTIC_INFIXES)


def semantic_metrics(metrics: Mapping[str, object]) -> dict[str, object]:
    """The semantic subset of a metric snapshot, sorted by name."""
    return {
        name: metrics[name] for name in sorted(metrics) if is_semantic_metric(name)
    }


def semantic_summary(summary: Mapping[str, object]) -> dict[str, object]:
    """A scenario summary with execution-strategy keys removed."""
    return {
        key: summary[key]
        for key in sorted(summary)
        if key not in NONSEMANTIC_SUMMARY_KEYS
    }


def semantic_shard_digest(
    metrics: Mapping[str, object],
    summary: Mapping[str, object],
    histograms: Mapping[str, Mapping],
) -> str:
    """SHA-256 over one shard's *semantic* payload.

    The engine-agnostic sibling of :meth:`~repro.obs.scenario.
    ScenarioRun.digest`: two shards that ran the same workload under
    different engines (reference vs batched, fast path on vs off) hash
    identically here, while any divergence in verdicts, drops, latency
    buckets, delivered bytes, or scenario summaries changes the digest.
    """
    payload = {
        "metrics": semantic_metrics(metrics),
        "summary": semantic_summary(summary),
        "histograms": {name: dict(histograms[name]) for name in sorted(histograms)},
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# Diff model
# ----------------------------------------------------------------------
class DiffKind(str, Enum):
    METRIC_VALUE = "metric-value"
    METRIC_SET = "metric-set"
    TENANT_SET = "tenant-set"
    COMPLETENESS = "completeness"
    TIMING_ONLY = "timing-only"

    @property
    def semantic(self) -> bool:
        return self is not DiffKind.TIMING_ONLY


@dataclass(frozen=True)
class DiffEntry:
    """One classified divergence between artifact ``a`` and ``b``."""

    kind: DiffKind
    name: str
    a: object
    b: object

    @property
    def semantic(self) -> bool:
        return self.kind.semantic

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "name": self.name,
            "a": self.a,
            "b": self.b,
            "semantic": self.semantic,
        }


@dataclass(frozen=True)
class ArtifactDiff:
    """The full classified diff between two ``flexsfp.run/1`` artifacts."""

    entries: tuple[DiffEntry, ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def identical(self) -> bool:
        return not self.entries

    @property
    def semantic_entries(self) -> tuple[DiffEntry, ...]:
        return tuple(entry for entry in self.entries if entry.semantic)

    @property
    def diverged(self) -> bool:
        """True when the runs differ *semantically* (timing-only excluded)."""
        return bool(self.semantic_entries)

    @property
    def verdict(self) -> str:
        if self.diverged:
            return "diverged"
        if self.entries:
            return "timing-only"
        return "identical"

    def counts(self) -> dict[str, int]:
        totals = {kind.value: 0 for kind in DiffKind}
        for entry in self.entries:
            totals[entry.kind.value] += 1
        return totals

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "diverged": self.diverged,
            "counts": self.counts(),
            "entries": [entry.to_dict() for entry in self.entries],
            "notes": list(self.notes),
        }


# ----------------------------------------------------------------------
# The diff itself
# ----------------------------------------------------------------------
def _payload(artifact) -> dict:
    """Accept a RunArtifact or its (possibly JSON-loaded) dict form."""
    if hasattr(artifact, "to_dict"):
        return artifact.to_dict()
    return dict(artifact)


def _canonical(value: object) -> object:
    """Normalize a value through canonical JSON for stable comparison.

    An artifact loaded from disk and one built in memory must compare
    equal: tuples become lists, dict key order is erased, and any
    ``default=str``-coerced value compares in its string form.
    """
    return json.loads(json.dumps(value, sort_keys=True, default=str))


def _diff_mapping(
    a: Mapping[str, object],
    b: Mapping[str, object],
    prefix: str,
    entries: list[DiffEntry],
    semantic_fn=is_semantic_metric,
) -> None:
    """Name-wise diff of two flat mappings with per-name classification."""
    for name in sorted(set(a) | set(b)):
        label = f"{prefix}{name}"
        semantic = semantic_fn(name)
        if name not in a or name not in b:
            kind = DiffKind.METRIC_SET if semantic else DiffKind.TIMING_ONLY
            entries.append(
                DiffEntry(kind, label, a.get(name), b.get(name))
            )
        elif _canonical(a[name]) != _canonical(b[name]):
            kind = DiffKind.METRIC_VALUE if semantic else DiffKind.TIMING_ONLY
            entries.append(DiffEntry(kind, label, a[name], b[name]))


def _diff_deployment(
    knobs_a: Mapping | None, knobs_b: Mapping | None, entries: list[DiffEntry]
) -> None:
    """Classify divergence between two ``knobs.deployment`` blocks.

    Comparing runs with different tenant *sets* is a category error, not
    a metric drift — one ``tenant-set`` entry carries the whole verdict.
    With the same names, per-tenant app/match/share drift is still
    ``tenant-set`` (the workload itself changed); per-tenant *engine*
    drift is the execution strategy and stays ``timing-only``, so the
    cross-engine matrix contract extends to multi-tenant runs.
    """
    dep_a = (knobs_a or {}).get("deployment") or {}
    dep_b = (knobs_b or {}).get("deployment") or {}
    if not dep_a and not dep_b:
        return
    tenants_a = {str(t.get("name")): t for t in dep_a.get("tenants", ())}
    tenants_b = {str(t.get("name")): t for t in dep_b.get("tenants", ())}
    if sorted(tenants_a) != sorted(tenants_b):
        entries.append(
            DiffEntry(
                DiffKind.TENANT_SET,
                "knobs.deployment.tenants",
                sorted(tenants_a),
                sorted(tenants_b),
            )
        )
        return
    for name in sorted(tenants_a):
        ta, tb = tenants_a[name], tenants_b[name]
        for field in ("app", "match", "share"):
            if _canonical(ta.get(field)) != _canonical(tb.get(field)):
                entries.append(
                    DiffEntry(
                        DiffKind.TENANT_SET,
                        f"knobs.deployment.tenants.{name}.{field}",
                        ta.get(field),
                        tb.get(field),
                    )
                )
        if ta.get("engine") != tb.get("engine"):
            entries.append(
                DiffEntry(
                    DiffKind.TIMING_ONLY,
                    f"knobs.deployment.tenants.{name}.engine",
                    ta.get("engine"),
                    tb.get("engine"),
                )
            )


def _completeness_view(block: Mapping | None) -> dict:
    """The coverage facts of a completeness block (retries excluded).

    Whether a shard needed a supervisor retry is operational noise; which
    shards the merged artifact actually covers is semantics.
    """
    block = block or {}
    return {
        "ok": bool(block.get("ok", True)),
        "shards": block.get("shards"),
        "completed": block.get("completed"),
        "failed_indices": list(block.get("failed_indices", ())),
    }


def diff_artifacts(a, b) -> ArtifactDiff:
    """Classify every divergence between two ``flexsfp.run/1`` artifacts.

    Accepts :class:`~repro.artifact.run.RunArtifact` instances or their
    dict/JSON-document forms interchangeably.  See the module docstring
    for the classification rules; the returned diff's :attr:`~
    ArtifactDiff.diverged` is the one-bit answer to "is configuration A
    semantically identical to configuration B".
    """
    da, db = _payload(a), _payload(b)
    entries: list[DiffEntry] = []
    notes: list[str] = []

    _diff_deployment(da.get("knobs"), db.get("knobs"), entries)

    shards_a = list(da.get("shards", ()))
    shards_b = list(db.get("shards", ()))
    same_fleet_shape = len(shards_a) == len(shards_b)

    # Merged views aggregate every shard; with different shard counts the
    # aggregates are incomparable by construction, so the common-shard
    # comparison below carries the semantics instead.
    if same_fleet_shape:
        _diff_mapping(
            dict(da.get("metrics", {})), dict(db.get("metrics", {})),
            "metrics.", entries,
        )
        _diff_mapping(
            dict(da.get("histograms", {})), dict(db.get("histograms", {})),
            "histograms.", entries,
        )
        _diff_mapping(
            semantic_summary(dict(da.get("summary", {}))),
            semantic_summary(dict(db.get("summary", {}))),
            "summary.", entries,
            semantic_fn=lambda _name: True,
        )
    else:
        notes.append(
            f"merged views not compared: {len(shards_a)} vs {len(shards_b)} "
            "shards aggregate different fleet sizes"
        )

    # Common shards compare by semantic digest — engine-agnostic, and
    # well-defined across shard counts because seeds derive from index.
    by_index_a = {int(shard["index"]): shard for shard in shards_a}
    by_index_b = {int(shard["index"]): shard for shard in shards_b}
    for index in sorted(set(by_index_a) & set(by_index_b)):
        shard_a, shard_b = by_index_a[index], by_index_b[index]
        if shard_a.get("seed") != shard_b.get("seed"):
            entries.append(
                DiffEntry(
                    DiffKind.METRIC_VALUE,
                    f"shards[{index}].seed",
                    shard_a.get("seed"),
                    shard_b.get("seed"),
                )
            )
            continue
        if shard_a.get("semantic_digest") != shard_b.get("semantic_digest"):
            summary_entries: list[DiffEntry] = []
            _diff_mapping(
                semantic_summary(dict(shard_a.get("summary", {}))),
                semantic_summary(dict(shard_b.get("summary", {}))),
                f"shards[{index}].summary.", summary_entries,
                semantic_fn=lambda _name: True,
            )
            entries.extend(summary_entries)
            if not summary_entries or not same_fleet_shape:
                entries.append(
                    DiffEntry(
                        DiffKind.METRIC_VALUE,
                        f"shards[{index}].semantic_digest",
                        shard_a.get("semantic_digest"),
                        shard_b.get("semantic_digest"),
                    )
                )

    comp_a = _completeness_view(da.get("completeness"))
    comp_b = _completeness_view(db.get("completeness"))
    if comp_a["ok"] != comp_b["ok"] or (
        same_fleet_shape
        and (
            comp_a["failed_indices"] != comp_b["failed_indices"]
            or comp_a["completed"] != comp_b["completed"]
        )
    ):
        entries.append(
            DiffEntry(DiffKind.COMPLETENESS, "completeness", comp_a, comp_b)
        )

    # Volatile sections: report, never semantic.
    for section in ("timings", "environment", "supervisor"):
        va, vb = dict(da.get(section, {})), dict(db.get(section, {}))
        if _canonical(va) != _canonical(vb):
            entries.append(DiffEntry(DiffKind.TIMING_ONLY, section, va, vb))

    return ArtifactDiff(entries=tuple(entries), notes=tuple(notes))


__all__ = [
    "ArtifactDiff",
    "DiffEntry",
    "DiffKind",
    "NONSEMANTIC_INFIXES",
    "NONSEMANTIC_NAMES",
    "NONSEMANTIC_PREFIXES",
    "NONSEMANTIC_SUFFIXES",
    "NONSEMANTIC_SUMMARY_KEYS",
    "diff_artifacts",
    "is_semantic_metric",
    "semantic_metrics",
    "semantic_shard_digest",
    "semantic_summary",
]
