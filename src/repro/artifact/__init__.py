"""``repro.artifact`` — the unified ``flexsfp.run/1`` document + diff.

One artifact shape for every entry point, and one canonical
:func:`diff_artifacts` that answers "did configuration A and
configuration B compute the same thing" with a typed divergence report
instead of scattered test assertions.
"""

from .diff import (
    ArtifactDiff,
    DiffEntry,
    DiffKind,
    diff_artifacts,
    is_semantic_metric,
    semantic_metrics,
    semantic_shard_digest,
    semantic_summary,
)
from .run import (
    DEFAULT_BATCHED_SIZE,
    ENGINE_BATCHED,
    ENGINE_COMPILED,
    ENGINE_REFERENCE,
    ENGINES,
    EngineConfig,
    RunArtifact,
    artifact_from_bench,
    artifact_from_fleet_result,
    artifact_from_scenario_run,
    engine_batch_size,
    engine_name,
    environment_fingerprint,
    fleet_view,
    load_artifact,
    spec_digest_of,
)

__all__ = [
    "DEFAULT_BATCHED_SIZE",
    "ENGINES",
    "ENGINE_BATCHED",
    "ENGINE_COMPILED",
    "ENGINE_REFERENCE",
    "ArtifactDiff",
    "EngineConfig",
    "DiffEntry",
    "DiffKind",
    "RunArtifact",
    "artifact_from_bench",
    "artifact_from_fleet_result",
    "artifact_from_scenario_run",
    "diff_artifacts",
    "engine_batch_size",
    "engine_name",
    "environment_fingerprint",
    "fleet_view",
    "is_semantic_metric",
    "load_artifact",
    "semantic_metrics",
    "semantic_shard_digest",
    "semantic_summary",
    "spec_digest_of",
]
