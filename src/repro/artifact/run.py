"""The unified run artifact: one ``flexsfp.run/1`` document per run.

Every entry point — ``flexsfp run``, the chaos gauntlet, ``flexsfp
matrix`` cells, and the benchmark harness — reduces its result to one
:class:`RunArtifact`: the resolved spec and its digest, the root seed,
the engine/fastpath/shard/device/fault-plan knobs, the merged metrics
registry snapshot, per-shard digests (raw and semantic), the
completeness block, findings, timings, and an environment fingerprint.
The artifact is the ingestion format for artifact stores and the operand
of :func:`~repro.artifact.diff.diff_artifacts` — "is configuration A
bit-identical to configuration B" is a diff of two of these documents.

The document splits into a *semantic* body and *volatile* trailers
(``timings``, ``environment``, ``supervisor``): the volatile sections
change between reruns and machines by design and are excluded from the
artifact digest, from semantic diffs, and — zeroed by
:meth:`RunArtifact.normalized` — from the golden corpus bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Mapping

from .._util import warn_deprecated
from ..engine import (  # noqa: F401 - canonical home is repro.engine; re-exported
    DEFAULT_BATCHED_SIZE,
    ENGINE_BATCHED,
    ENGINE_COMPILED,
    ENGINE_REFERENCE,
    ENGINES,
    EngineConfig,
    engine_batch_size,
    engine_name,
    resolve_engine,
)
from ..analysis.effects import corpus_digest
from ..errors import ConfigError
from ..obs.export import SCHEMA_FLEET, SCHEMA_RUN, json_document
from .diff import semantic_shard_digest

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..obs.scenario import ScenarioRun
    from ..parallel.runner import FleetRunResult


def environment_fingerprint() -> dict:
    """Where this artifact was produced (volatile: never diffed as semantic)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "repro": _package_version(),
    }


def _package_version() -> str:
    from .. import __version__

    return __version__


def spec_digest_of(spec_payload: Mapping[str, object]) -> str:
    """SHA-256 over the canonical JSON of a spec payload.

    Field order never matters: the canonical encoding sorts keys, so a
    spec dict that round-tripped through JSON, a hand-reordered copy,
    and the original dataclass all digest identically.
    """
    canonical = json.dumps(dict(spec_payload), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class RunArtifact:
    """One run, reduced to the ``flexsfp.run/1`` document fields."""

    source: str
    spec: dict
    spec_digest: str
    seed: int
    knobs: dict
    metrics: dict
    histograms: dict
    shards: tuple[dict, ...]
    completeness: dict
    summary: dict = field(default_factory=dict)
    findings: tuple[dict, ...] = ()
    timings: dict = field(default_factory=dict)
    environment: dict = field(default_factory=dict)
    supervisor: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return bool(self.completeness.get("ok", True))

    @property
    def digests(self) -> tuple[str, ...]:
        return tuple(str(shard["digest"]) for shard in self.shards)

    @property
    def semantic_digests(self) -> tuple[str, ...]:
        return tuple(str(shard["semantic_digest"]) for shard in self.shards)

    def artifact_digest(self) -> str:
        """SHA-256 over the semantic body (volatile trailers excluded).

        Stable across reruns with the same seed, across machines, and
        across worker counts — the fingerprint an artifact store keys on.
        """
        body = self.to_dict()
        for volatile in ("timings", "environment", "supervisor"):
            body.pop(volatile, None)
        canonical = json.dumps(body, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_RUN,
            "source": self.source,
            "spec": dict(self.spec),
            "spec_digest": self.spec_digest,
            "seed": self.seed,
            "knobs": dict(self.knobs),
            "metrics": dict(self.metrics),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "shards": [dict(shard) for shard in self.shards],
            "completeness": dict(self.completeness),
            "summary": dict(self.summary),
            "findings": [dict(finding) for finding in self.findings],
            "timings": dict(self.timings),
            "environment": dict(self.environment),
            "supervisor": dict(self.supervisor),
        }

    def document(self) -> str:
        """The canonical one-line ``flexsfp.run/1`` JSON document."""
        payload = self.to_dict()
        payload.pop("schema")
        return json_document(SCHEMA_RUN, **payload)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunArtifact":
        data = dict(payload)
        schema = data.pop("schema", SCHEMA_RUN)
        if schema != SCHEMA_RUN:
            raise ConfigError(
                f"expected a {SCHEMA_RUN!r} document, got schema {schema!r}"
            )
        return cls(
            source=str(data.get("source", "")),
            spec=dict(data.get("spec", {})),
            spec_digest=str(data.get("spec_digest", "")),
            seed=int(data.get("seed", 0)),
            knobs=dict(data.get("knobs", {})),
            metrics=dict(data.get("metrics", {})),
            histograms={
                name: dict(state)
                for name, state in dict(data.get("histograms", {})).items()
            },
            shards=tuple(dict(shard) for shard in data.get("shards", ())),
            completeness=dict(data.get("completeness", {})),
            summary=dict(data.get("summary", {})),
            findings=tuple(dict(f) for f in data.get("findings", ())),
            timings=dict(data.get("timings", {})),
            environment=dict(data.get("environment", {})),
            supervisor=dict(data.get("supervisor", {})),
        )

    # ------------------------------------------------------------------
    def normalized(self) -> "RunArtifact":
        """A copy with the volatile trailers zeroed.

        This is the golden-corpus form: byte-identical across machines,
        Python builds, and reruns, while remaining a valid
        ``flexsfp.run/1`` document.
        """
        return replace(self, timings={}, environment={}, supervisor={})

    def golden_bytes(self) -> bytes:
        """Canonical pretty-printed bytes of the normalized artifact."""
        return (
            json.dumps(
                self.normalized().to_dict(), sort_keys=True, indent=2, default=str
            )
            + "\n"
        ).encode()


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _knobs_from_spec(spec_payload: Mapping, workers: int | None) -> dict:
    batch_size = spec_payload.get("batch_size") or 1
    engine = str(spec_payload.get("engine") or engine_name(batch_size))
    fastpath = bool(spec_payload.get("fastpath"))
    knobs = {
        "engine": engine,
        "engine_config": {
            "tier": engine,
            "fastpath": fastpath,
            "batch_size": batch_size,
        },
        "fastpath": fastpath,
        "batch_size": batch_size,
        "shards": int(spec_payload.get("shards", 1)),
        "workers": workers,
        "device": spec_payload.get("device"),
        "fault_plan": spec_payload.get("fault_plan"),
        # Effect-analysis digest over the bundled app corpus: artifact
        # diffs surface analysis/IR drift even when metrics agree.
        "effect_digest": corpus_digest(),
    }
    tenants = spec_payload.get("tenants")
    if tenants:
        # The resolved deployment: tenant identity and workload fields
        # are semantic (diffed as ``tenant-set``); the per-tenant engine
        # echoes the execution tier and diffs as ``timing-only``.
        knobs["deployment"] = {
            "tenants": [
                {
                    "name": tenant.get("name"),
                    "app": tenant.get("app"),
                    "match": dict(tenant.get("match") or {}),
                    "share": tenant.get("share", 1.0),
                    "engine": tenant.get("engine") or engine,
                }
                for tenant in tenants
            ],
        }
    return knobs


def artifact_from_fleet_result(
    result: "FleetRunResult",
    source: str = "flexsfp-run",
    findings: Iterable[Mapping] = (),
) -> RunArtifact:
    """Reduce a (supervised) fleet run to its ``flexsfp.run/1`` artifact."""
    spec_payload = result.spec.to_dict()
    shards = tuple(
        {
            "index": shard.index,
            "seed": shard.seed,
            "digest": shard.digest,
            "semantic_digest": semantic_shard_digest(
                shard.metrics, shard.summary, shard.histograms
            ),
            "summary": dict(shard.summary),
        }
        for shard in result.shards
    )
    completeness = (
        result.completeness.to_dict()
        if result.completeness is not None
        else {
            "ok": True,
            "shards": spec_payload.get("shards", len(shards)),
            "completed": len(shards),
            "failed": [],
            "failed_indices": [],
            "resumed": [],
            "retries": 0,
        }
    )
    return RunArtifact(
        source=source,
        spec=spec_payload,
        spec_digest=spec_digest_of(spec_payload),
        seed=int(spec_payload.get("seed", 0)),
        knobs=_knobs_from_spec(spec_payload, result.workers),
        metrics=dict(result.merged_metrics),
        histograms={k: dict(v) for k, v in result.merged_histograms.items()},
        shards=shards,
        completeness=completeness,
        findings=tuple(dict(finding) for finding in findings),
        timings={"wall_s": result.wall_s},
        environment=environment_fingerprint(),
        supervisor=dict(result.supervisor),
    )


def artifact_from_scenario_run(
    run: "ScenarioRun",
    source: str,
    findings: Iterable[Mapping] = (),
    wall_s: float | None = None,
) -> RunArtifact:
    """Wrap one in-process :class:`ScenarioRun` as a 1-shard artifact.

    The chaos-gauntlet CLI and any direct ``spec.run()`` caller emit
    through here: same document, same digests, same diffability as a
    sharded campaign of size one.
    """
    spec = run.spec
    if spec is None:
        raise ConfigError("scenario run carries no spec; cannot build artifact")
    spec_payload = spec.resolved().to_dict()
    metrics = dict(run.metrics())
    histograms = run.histograms()
    summary = dict(run.summary or {})
    shard = {
        "index": 0,
        "seed": int(spec_payload.get("seed", 0)),
        "digest": run.digest(),
        "semantic_digest": semantic_shard_digest(metrics, summary, histograms),
        "summary": summary,
    }
    timings = {} if wall_s is None else {"wall_s": wall_s}
    return RunArtifact(
        source=source,
        spec=spec_payload,
        spec_digest=spec_digest_of(spec_payload),
        seed=int(spec_payload.get("seed", 0)),
        knobs=_knobs_from_spec(spec_payload, workers=None),
        metrics=metrics,
        histograms={k: dict(v) for k, v in histograms.items()},
        shards=(shard,),
        completeness={
            "ok": True,
            "shards": 1,
            "completed": 1,
            "failed": [],
            "failed_indices": [],
            "resumed": [],
            "retries": 0,
        },
        summary=summary,
        findings=tuple(dict(finding) for finding in findings),
        timings=timings,
        environment=environment_fingerprint(),
    )


def artifact_from_bench(
    bench: str,
    metrics: Mapping[str, object],
    seed: int = 0,
    knobs: Mapping[str, object] | None = None,
    summary: Mapping[str, object] | None = None,
    wall_s: float | None = None,
) -> RunArtifact:
    """A benchmark result as a ``flexsfp.run/1`` artifact.

    Benches have no :class:`~repro.obs.scenario.ScenarioSpec`; the spec
    payload is the bench's own identity (name + seed + knobs), which is
    exactly what must be stable for BENCH history entries to be
    comparable across commits.
    """
    knobs = dict(knobs or {})
    # One coherent engine selection for the knob block: an explicit
    # engine_config knob is taken verbatim (and validated); otherwise the
    # bench's tier/legacy knobs resolve exactly like any other entrypoint.
    provided = knobs.get("engine_config")
    if isinstance(provided, Mapping):
        config = EngineConfig(**dict(provided))
    else:
        raw_fastpath = knobs.get("fastpath")
        raw_batch = knobs.get("batch_size")
        config = resolve_engine(
            knobs.get("engine"),
            None if raw_fastpath is None else bool(raw_fastpath),
            None if raw_batch is None else int(raw_batch),
        )
    engine, fastpath, batch_size = config.tier, config.fastpath, config.batch_size
    spec_payload = {"kind": f"bench:{bench}", "seed": seed, **knobs}
    metrics = dict(metrics)
    summary = dict(summary or {})
    shard = {
        "index": 0,
        "seed": seed,
        "digest": semantic_shard_digest(metrics, summary, {}),
        "semantic_digest": semantic_shard_digest(metrics, summary, {}),
        "summary": summary,
    }
    return RunArtifact(
        source=f"bench:{bench}",
        spec=spec_payload,
        spec_digest=spec_digest_of(spec_payload),
        seed=seed,
        knobs={
            "engine": engine,
            "engine_config": config.to_dict(),
            "fastpath": fastpath,
            "batch_size": batch_size,
            "shards": int(knobs.get("shards", 1) or 1),
            "workers": knobs.get("workers"),
            "device": knobs.get("device"),
            "fault_plan": knobs.get("fault_plan"),
            "effect_digest": corpus_digest(),
        },
        metrics=metrics,
        histograms={},
        shards=(shard,),
        completeness={
            "ok": True,
            "shards": 1,
            "completed": 1,
            "failed": [],
            "failed_indices": [],
            "resumed": [],
            "retries": 0,
        },
        summary=summary,
        timings={} if wall_s is None else {"wall_s": wall_s},
        environment=environment_fingerprint(),
    )


# ----------------------------------------------------------------------
# Loading + legacy views
# ----------------------------------------------------------------------
def load_artifact(path) -> RunArtifact:
    """Load a ``flexsfp.run/1`` document from disk.

    Legacy ``flexsfp.fleet/1`` documents (PR 4/5 artifacts) are accepted
    and upgraded in place, so historical CI artifacts stay diffable
    against new runs.
    """
    from pathlib import Path

    target = Path(path)
    if not target.is_file():
        raise ConfigError(f"artifact {target} does not exist")
    try:
        payload = json.loads(target.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"artifact {target} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ConfigError(f"artifact {target} is not a JSON document")
    schema = payload.get("schema")
    if schema == SCHEMA_FLEET:
        return _upgrade_fleet_document(payload)
    return RunArtifact.from_dict(payload)


def _upgrade_fleet_document(payload: Mapping) -> RunArtifact:
    """Build a RunArtifact from a legacy ``flexsfp.fleet/1`` document."""
    spec_payload = dict(payload.get("spec", {}))
    shards = tuple(
        {
            "index": int(shard["index"]),
            "seed": int(shard["seed"]),
            "digest": str(shard["digest"]),
            "semantic_digest": semantic_shard_digest(
                dict(shard.get("metrics", {})),
                dict(shard.get("summary", {})),
                dict(shard.get("histograms", {})),
            ),
            "summary": dict(shard.get("summary", {})),
        }
        for shard in payload.get("shards", ())
    )
    completeness = payload.get("completeness") or {
        "ok": True,
        "shards": spec_payload.get("shards", len(shards)),
        "completed": len(shards),
        "failed": [],
        "failed_indices": [],
        "resumed": [],
        "retries": 0,
    }
    return RunArtifact(
        source="flexsfp.fleet/1",
        spec=spec_payload,
        spec_digest=spec_digest_of(spec_payload),
        seed=int(spec_payload.get("seed", 0)),
        knobs=_knobs_from_spec(spec_payload, payload.get("workers")),
        metrics=dict(payload.get("merged_metrics", {})),
        histograms={
            name: dict(state)
            for name, state in dict(payload.get("merged_histograms", {})).items()
        },
        shards=shards,
        completeness=dict(completeness),
        timings={"wall_s": payload.get("wall_s", 0.0)},
        supervisor=dict(payload.get("supervisor", {})),
    )


def fleet_view(artifact: RunArtifact) -> dict:
    """Deprecated: the old ``flexsfp.fleet/1`` shape of a run artifact.

    Kept so PR 4/5 consumers (dashboards, jq pipelines over CI
    artifacts) survive the ``flexsfp.run/1`` migration; per-shard
    metric snapshots — which the run artifact intentionally reduces to
    digests — are not reconstructed.
    """
    warn_deprecated("fleet_view()", "the flexsfp.run/1 document itself")
    return {
        "schema": SCHEMA_FLEET,
        "spec": dict(artifact.spec),
        "workers": artifact.knobs.get("workers"),
        "shards": [
            {
                "index": shard["index"],
                "seed": shard["seed"],
                "digest": shard["digest"],
                "summary": dict(shard.get("summary", {})),
            }
            for shard in artifact.shards
        ],
        "digests": list(artifact.digests),
        "merged_metrics": dict(artifact.metrics),
        "merged_histograms": {k: dict(v) for k, v in artifact.histograms.items()},
        "wall_s": artifact.timings.get("wall_s", 0.0),
        "completeness": dict(artifact.completeness),
        "supervisor": dict(artifact.supervisor),
    }


__all__ = [
    "DEFAULT_BATCHED_SIZE",
    "ENGINES",
    "ENGINE_BATCHED",
    "ENGINE_COMPILED",
    "ENGINE_REFERENCE",
    "EngineConfig",
    "RunArtifact",
    "artifact_from_bench",
    "artifact_from_fleet_result",
    "artifact_from_scenario_run",
    "engine_batch_size",
    "engine_name",
    "environment_fingerprint",
    "fleet_view",
    "load_artifact",
    "spec_digest_of",
]
