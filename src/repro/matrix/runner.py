"""The scenario matrix: sweep spec axes, diff every cell vs a baseline.

A matrix run is the one-command differential oracle: take a base
:class:`~repro.obs.scenario.ScenarioSpec`, expand it across
engine × fastpath × shards × workers × device × fault-plan axes, run
each cell through the supervised sharded runner, reduce each cell to a
``flexsfp.run/1`` artifact, and cross-diff every cell against the
designated baseline cell with :func:`repro.artifact.diff_artifacts`.
"Does the batched engine compute what the reference engine computes, at
every shard count" stops being a test file and becomes
``flexsfp matrix --engines reference,batched --shards 1,4``.

Shard-count cells share their shard prefix (shard ``i`` always runs
under the same derived seed), so the diff engine compares per-shard
semantic digests across cells with different shard counts instead of
apples-to-oranges merged aggregates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterator

from ..artifact import (
    DEFAULT_BATCHED_SIZE,
    ArtifactDiff,
    RunArtifact,
    diff_artifacts,
    engine_batch_size,
    engine_name,
)
from ..engine import ENGINE_COMPILED
from ..errors import ConfigError
from ..obs.export import SCHEMA_MATRIX, json_document
from ..obs.scenario import ScenarioSpec
from ..parallel.runner import run_sharded


@dataclass(frozen=True)
class MatrixAxes:
    """The swept knobs.  Every axis defaults to "just the base spec".

    ``devices`` / ``fault_plans`` accept ``None`` entries meaning "keep
    whatever the base spec says" — the identity element every axis
    needs so a 1-long axis never perturbs the spec.
    """

    engines: tuple[str, ...] = ("reference",)
    fastpath: tuple[bool, ...] = (False,)
    shards: tuple[int, ...] = (1,)
    workers: tuple[int, ...] = (1,)
    devices: tuple[str | None, ...] = (None,)
    fault_plans: tuple[str | None, ...] = (None,)
    batched_size: int = DEFAULT_BATCHED_SIZE

    def validate(self) -> None:
        for axis, values in (
            ("engines", self.engines),
            ("fastpath", self.fastpath),
            ("shards", self.shards),
            ("workers", self.workers),
            ("devices", self.devices),
            ("fault_plans", self.fault_plans),
        ):
            if not values:
                raise ConfigError(f"matrix axis {axis!r} must be non-empty")
        for engine in self.engines:
            engine_batch_size(engine, self.batched_size)  # raises on unknown
        for count in self.shards:
            if count < 1:
                raise ConfigError(f"shards axis values must be >= 1: {count}")
        for count in self.workers:
            if count < 1:
                raise ConfigError(f"workers axis values must be >= 1: {count}")

    def size(self) -> int:
        return (
            len(self.engines)
            * len(self.fastpath)
            * len(self.shards)
            * len(self.workers)
            * len(self.devices)
            * len(self.fault_plans)
        )

    def cells(self) -> Iterator["CellConfig"]:
        """Every cell in deterministic axis-major order.

        The first yielded cell is the default baseline, so axis ordering
        is part of the contract: engines vary slowest, fault plans
        fastest.  The ``compiled`` engine *is* the fused fastpath, so a
        ``fastpath`` axis collapses on it — compiled cells always run
        fastpath-on and the resulting duplicates are emitted once.
        """
        self.validate()
        seen: set[CellConfig] = set()
        for engine, fastpath, shards, workers, device, plan in itertools.product(
            self.engines,
            self.fastpath,
            self.shards,
            self.workers,
            self.devices,
            self.fault_plans,
        ):
            if engine == ENGINE_COMPILED:
                fastpath = True
            config = CellConfig(
                engine=engine,
                fastpath=fastpath,
                shards=shards,
                workers=workers,
                device=device,
                fault_plan=plan,
                batch_size=engine_batch_size(engine, self.batched_size),
            )
            if config in seen:
                continue
            seen.add(config)
            yield config


@dataclass(frozen=True)
class CellConfig:
    """One matrix cell's knob assignment."""

    engine: str
    fastpath: bool
    shards: int
    workers: int
    device: str | None
    fault_plan: str | None
    batch_size: int

    @property
    def label(self) -> str:
        parts = [
            f"engine={self.engine}",
            f"fastpath={'on' if self.fastpath else 'off'}",
            f"shards={self.shards}",
            f"workers={self.workers}",
        ]
        if self.device is not None:
            parts.append(f"device={self.device}")
        if self.fault_plan is not None:
            parts.append(f"faults={self.fault_plan}")
        return ",".join(parts)

    def apply(self, base: ScenarioSpec) -> ScenarioSpec:
        """The cell's concrete spec: base spec with this cell's knobs."""
        changes: dict[str, object] = {
            "engine": self.engine,
            "fastpath": self.fastpath,
            "batch_size": self.batch_size,
            "shards": self.shards,
        }
        if self.device is not None:
            changes["device"] = self.device
        if self.fault_plan is not None:
            changes["fault_plan"] = self.fault_plan
        return replace(base, **changes)

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "fastpath": self.fastpath,
            "shards": self.shards,
            "workers": self.workers,
            "device": self.device,
            "fault_plan": self.fault_plan,
            "batch_size": self.batch_size,
            "label": self.label,
        }


@dataclass(frozen=True)
class MatrixCell:
    """One executed cell: its config, artifact, and diff vs baseline."""

    config: CellConfig
    artifact: RunArtifact
    diff: ArtifactDiff | None  # None only for the baseline cell

    @property
    def is_baseline(self) -> bool:
        return self.diff is None

    @property
    def diverged(self) -> bool:
        return self.diff is not None and self.diff.diverged

    @property
    def verdict(self) -> str:
        return "baseline" if self.diff is None else self.diff.verdict

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "artifact": self.artifact.to_dict(),
            "diff": None if self.diff is None else self.diff.to_dict(),
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class MatrixResult:
    """A full matrix run, ready to render or persist as one document."""

    base_spec: dict
    baseline: str
    cells: tuple[MatrixCell, ...]

    @property
    def diverged(self) -> bool:
        return any(cell.diverged for cell in self.cells)

    @property
    def ok(self) -> bool:
        """Every cell complete (no shard losses anywhere in the grid)."""
        return all(cell.artifact.ok for cell in self.cells)

    @property
    def diverged_cells(self) -> tuple[MatrixCell, ...]:
        return tuple(cell for cell in self.cells if cell.diverged)

    @property
    def verdict(self) -> str:
        if self.diverged:
            return "diverged"
        if not self.ok:
            return "partial"
        return "clean"

    def counts(self) -> dict:
        return {
            "cells": len(self.cells),
            "diverged": len(self.diverged_cells),
            "partial": sum(1 for cell in self.cells if not cell.artifact.ok),
        }

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_MATRIX,
            "base_spec": dict(self.base_spec),
            "baseline": self.baseline,
            "verdict": self.verdict,
            "counts": self.counts(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def document(self) -> str:
        """The canonical one-line ``flexsfp.matrix/1`` JSON document."""
        payload = self.to_dict()
        payload.pop("schema")
        return json_document(SCHEMA_MATRIX, **payload)

    def rows(self) -> list[tuple]:
        """(label, verdict, semantic, timing-only, ok) per cell — the
        CLI table body."""
        rows = []
        for cell in self.cells:
            semantic = (
                0 if cell.diff is None else len(cell.diff.semantic_entries)
            )
            timing = (
                0
                if cell.diff is None
                else len(cell.diff.entries) - semantic
            )
            rows.append(
                (
                    cell.config.label,
                    cell.verdict,
                    semantic,
                    timing,
                    "yes" if cell.artifact.ok else "NO",
                )
            )
        return rows


def run_matrix(
    spec: ScenarioSpec,
    axes: MatrixAxes,
    baseline: int = 0,
    start_method: str | None = None,
    progress=None,
) -> MatrixResult:
    """Execute every cell of ``axes`` over ``spec`` and diff vs baseline.

    The base spec is resolved once in the parent — every cell then
    overrides exactly the swept knobs, so un-swept knobs (traffic, app,
    seed) are pinned identically across the grid.  ``baseline`` indexes
    into the deterministic cell order (default: first cell).
    ``progress`` is an optional ``callable(label)`` invoked before each
    cell runs (the CLI's live narration hook).
    """
    configs = list(axes.cells())
    if not 0 <= baseline < len(configs):
        raise ConfigError(
            f"baseline index {baseline} out of range for {len(configs)} cells"
        )
    resolved = spec.resolved()
    artifacts: list[RunArtifact] = []
    for config in configs:
        if progress is not None:
            progress(config.label)
        cell_spec = config.apply(resolved)
        result = run_sharded(
            cell_spec, workers=config.workers, start_method=start_method
        )
        artifacts.append(
            result.to_artifact(source=f"matrix:{config.label}")
        )
    base_artifact = artifacts[baseline]
    cells = tuple(
        MatrixCell(
            config=config,
            artifact=artifact,
            diff=(
                None
                if index == baseline
                else diff_artifacts(base_artifact, artifact)
            ),
        )
        for index, (config, artifact) in enumerate(zip(configs, artifacts))
    )
    return MatrixResult(
        base_spec=resolved.to_dict(),
        baseline=configs[baseline].label,
        cells=cells,
    )


def parse_axis_values(raw: str, axis: str) -> tuple[str, ...]:
    """Split a comma-separated CLI axis value, rejecting empties."""
    values = tuple(part.strip() for part in raw.split(",") if part.strip())
    if not values:
        raise ConfigError(f"matrix axis {axis!r} has no values: {raw!r}")
    return values


def parse_bool_axis(raw: str, axis: str) -> tuple[bool, ...]:
    """Parse an on/off axis like ``on,off`` into booleans."""
    mapping = {
        "on": True,
        "off": False,
        "true": True,
        "false": False,
        "1": True,
        "0": False,
    }
    values = []
    for token in parse_axis_values(raw, axis):
        try:
            values.append(mapping[token.lower()])
        except KeyError:
            raise ConfigError(
                f"matrix axis {axis!r}: expected on/off, got {token!r}"
            ) from None
    return tuple(values)


def parse_int_axis(raw: str, axis: str) -> tuple[int, ...]:
    """Parse a comma-separated integer axis like ``1,4``."""
    values = []
    for token in parse_axis_values(raw, axis):
        try:
            values.append(int(token))
        except ValueError:
            raise ConfigError(
                f"matrix axis {axis!r}: expected integers, got {token!r}"
            ) from None
    return tuple(values)


def parse_optional_axis(
    raw: str, axis: str
) -> tuple[str | None, ...]:
    """Parse an axis whose ``none`` token means "keep the base spec"."""
    return tuple(
        None if token.lower() == "none" else token
        for token in parse_axis_values(raw, axis)
    )


__all__ = [
    "CellConfig",
    "MatrixAxes",
    "MatrixCell",
    "MatrixResult",
    "parse_axis_values",
    "parse_bool_axis",
    "parse_int_axis",
    "parse_optional_axis",
    "run_matrix",
]
