"""``repro.matrix`` — sweep ScenarioSpec axes and cross-diff the cells."""

from .runner import (
    CellConfig,
    MatrixAxes,
    MatrixCell,
    MatrixResult,
    parse_axis_values,
    parse_bool_axis,
    parse_int_axis,
    parse_optional_axis,
    run_matrix,
)

__all__ = [
    "CellConfig",
    "MatrixAxes",
    "MatrixCell",
    "MatrixResult",
    "parse_axis_values",
    "parse_bool_axis",
    "parse_int_axis",
    "parse_optional_axis",
    "run_matrix",
]
