"""Static analysis for the FlexSFP build flow and for the repo itself.

Three analyzers share one :class:`Finding` model:

* :mod:`~repro.analysis.irverify` — semantic checks over pipeline IR.
* :mod:`~repro.analysis.xdpcheck` — AST analysis of XDP packet functions.
* :mod:`~repro.analysis.simlint` — a determinism linter over sim-critical
  source (protecting the golden-determinism guarantees).

:func:`check_app` is the aggregate entry point the compiler
(``verify=True``) and the ``flexsfp check`` CLI subcommand both use.
"""

from __future__ import annotations

from ..core.shells import ShellSpec
from ..fpga.resources import FPGADevice, MPF200T
from ..hls.xdp import XdpProgram
from .effects import (
    EffectSummary,
    LineRateVerdict,
    StageEffect,
    analyze_app,
    analyze_pipeline,
    corpus_digest,
    effect_findings,
    fusion_engagement,
    line_rate_verdict,
    profile_findings,
)
from .findings import (
    Finding,
    Severity,
    errors,
    severity_counts,
    sort_findings,
    warnings,
)
from .irverify import verify_pipeline
from .simlint import default_lint_root, lint_file, lint_paths, lint_source
from .xdpcheck import check_program, scan_source_file


def check_app(
    app,
    device: FPGADevice = MPF200T,
    shell: ShellSpec | None = None,
) -> list[Finding]:
    """All static findings for one application: XDP analysis + IR verify.

    Also cross-checks any surviving hand-written ``compiled_profile``
    declaration against the derived effect summary — a mismatch is an
    error, so a stale fusion contract can never gate the compiled tier.
    """
    findings: list[Finding] = []
    rewrites = None
    if isinstance(app, XdpProgram):
        findings += check_program(app)
        rewrites = list(app.rewrites)
    spec = app.pipeline_spec()
    findings += verify_pipeline(
        spec, device=device, shell=shell, rewrites=rewrites
    )
    findings += profile_findings(app, analyze_pipeline(spec))
    return sort_findings(findings)


__all__ = [
    "EffectSummary",
    "Finding",
    "LineRateVerdict",
    "Severity",
    "StageEffect",
    "analyze_app",
    "analyze_pipeline",
    "check_app",
    "check_program",
    "corpus_digest",
    "default_lint_root",
    "effect_findings",
    "errors",
    "fusion_engagement",
    "lint_file",
    "lint_paths",
    "lint_source",
    "line_rate_verdict",
    "profile_findings",
    "scan_source_file",
    "severity_counts",
    "sort_findings",
    "verify_pipeline",
    "warnings",
]
