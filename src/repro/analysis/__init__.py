"""Static analysis for the FlexSFP build flow and for the repo itself.

Three analyzers share one :class:`Finding` model:

* :mod:`~repro.analysis.irverify` — semantic checks over pipeline IR.
* :mod:`~repro.analysis.xdpcheck` — AST analysis of XDP packet functions.
* :mod:`~repro.analysis.simlint` — a determinism linter over sim-critical
  source (protecting the golden-determinism guarantees).

:func:`check_app` is the aggregate entry point the compiler
(``verify=True``) and the ``flexsfp check`` CLI subcommand both use.
"""

from __future__ import annotations

from ..core.shells import ShellSpec
from ..fpga.resources import FPGADevice, MPF200T
from ..hls.xdp import XdpProgram
from .findings import (
    Finding,
    Severity,
    errors,
    severity_counts,
    sort_findings,
    warnings,
)
from .irverify import verify_pipeline
from .simlint import default_lint_root, lint_file, lint_paths, lint_source
from .xdpcheck import check_program, scan_source_file


def check_app(
    app,
    device: FPGADevice = MPF200T,
    shell: ShellSpec | None = None,
) -> list[Finding]:
    """All static findings for one application: XDP analysis + IR verify."""
    findings: list[Finding] = []
    rewrites = None
    if isinstance(app, XdpProgram):
        findings += check_program(app)
        rewrites = list(app.rewrites)
    findings += verify_pipeline(
        app.pipeline_spec(), device=device, shell=shell, rewrites=rewrites
    )
    return sort_findings(findings)


__all__ = [
    "Finding",
    "Severity",
    "check_app",
    "check_program",
    "default_lint_root",
    "errors",
    "lint_file",
    "lint_paths",
    "lint_source",
    "scan_source_file",
    "severity_counts",
    "sort_findings",
    "verify_pipeline",
    "warnings",
]
