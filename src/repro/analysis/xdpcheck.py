"""Static analysis of XDP packet functions: the compile-time twin of
:meth:`XdpProgram.lint`.

Where the runtime lint observes what a program *did* touch, this analyzer
inspects the Python AST of the program's ``func`` to reject what it *could*
do — before a single packet is processed, matching the hXDP/P4 toolchain
philosophy of ahead-of-time verification (§4.2):

* ``xdp-loop`` — ``while`` loops (and ``for`` over anything but a
  constant ``range``) cannot be unrolled into pipeline stages.
* ``xdp-recursion`` — no call stack in hardware.
* ``xdp-float`` — no floating-point units in the datapath.
* ``xdp-wallclock`` — wall-clock reads break determinism; hardware has
  ``ctx.now_ns()``.
* ``xdp-random`` — no entropy source in the PPE.
* ``xdp-try`` — no exception unwinding in hardware.
* ``xdp-alloc`` — dynamic allocation in the per-packet hot path does not
  synthesize; state belongs in declared :class:`XdpMap` storage.
* ``xdp-undeclared-map`` / ``xdp-unused-map`` — map accesses must match
  the declared map list that sizes the table stages.
* ``xdp-undeclared-header`` / ``xdp-undeclared-rewrite`` — header touches
  and field rewrites must be covered by ``parses`` / ``rewrites`` so the
  parser and action units are sized correctly.
* ``xdp-verdict`` — every path must return an :class:`XdpVerdict`.
* ``xdp-dead-code`` — statements after an unconditional return/raise are
  unreachable, yet the hXDP-style compiler would still allocate stages
  for them; dead code is a warning so the footprint stays honest.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from pathlib import Path

from ..hls.xdp import XdpMap, XdpProgram
from ..packet import IPv4, IPv6, TCP, UDP, Ethernet
from .findings import Finding, Severity, sort_findings

_CTX_HEADER_PROPS: dict[str, type] = {
    "eth": Ethernet,
    "ipv4": IPv4,
    "ipv6": IPv6,
    "tcp": TCP,
    "udp": UDP,
}

_WALLCLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_WALLCLOCK_BARE_NAMES = frozenset({"perf_counter", "monotonic", "time_ns"})
_ALLOC_BUILTINS = frozenset({"list", "dict", "set", "bytearray"})
_MAP_METHODS = frozenset({"lookup", "update", "delete"})


def _function_ast(func) -> ast.FunctionDef | ast.Lambda | None:
    """The AST node of ``func``, or ``None`` when source is unavailable."""
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(source)
    except SyntaxError:
        # Lambdas embedded mid-expression may not dedent into a valid
        # module; wrap in parentheses as a fallback.
        try:
            tree = ast.parse(f"({source.strip().rstrip(',')})")
        except SyntaxError:
            return None
    name = getattr(func, "__name__", "")
    if name and name != "<lambda>":
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda):
            return node
    return None


def _resolved_names(func) -> dict[str, object]:
    """Name → object bindings visible to ``func`` (globals + closure)."""
    try:
        closure = inspect.getclosurevars(func)
    except (TypeError, ValueError):
        return dict(getattr(func, "__globals__", {}))
    names: dict[str, object] = dict(closure.globals)
    names.update(closure.nonlocals)
    return names


def _ctx_arg_name(node: ast.FunctionDef | ast.Lambda) -> str | None:
    args = node.args.args
    return args[0].arg if args else None


def _is_constant_range(call: ast.expr) -> bool:
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
        and all(
            isinstance(a, ast.Constant) and isinstance(a.value, int)
            for a in call.args
        )
        and not call.keywords
    )


def _always_returns_value(body: list[ast.stmt]) -> bool:
    """True when every path through ``body`` returns a value or raises."""
    for stmt in body:
        if isinstance(stmt, ast.Return):
            return stmt.value is not None
        if isinstance(stmt, ast.Raise):
            return True
        if isinstance(stmt, ast.If):
            if (
                stmt.orelse
                and _always_returns_value(stmt.body)
                and _always_returns_value(stmt.orelse)
            ):
                return True
        if isinstance(stmt, ast.With) and _always_returns_value(stmt.body):
            return True
        if isinstance(stmt, ast.Match):
            cases = stmt.cases
            exhaustive = any(
                isinstance(c.pattern, ast.MatchAs) and c.pattern.pattern is None
                for c in cases
            )
            if exhaustive and all(_always_returns_value(c.body) for c in cases):
                return True
    return False


class _FunctionChecker(ast.NodeVisitor):
    """One pass over a packet function's AST, collecting findings."""

    def __init__(
        self,
        node: ast.FunctionDef | ast.Lambda,
        location: str,
        program: XdpProgram | None = None,
        names: dict[str, object] | None = None,
    ) -> None:
        self.node = node
        self.location = location
        self.program = program
        self.names = names or {}
        self.ctx_name = _ctx_arg_name(node)
        self.func_name = getattr(node, "name", None)
        self.findings: list[Finding] = []
        self.accessed_maps: set[str] = set()
        self._header_vars: dict[str, type] = {}

    # ------------------------------------------------------------------
    def _add(self, rule: str, severity: Severity, line: int, message: str,
             hint: str = "") -> None:
        self.findings.append(
            Finding(rule, severity, f"{self.location}:{line}", message, hint)
        )

    def run(self) -> list[Finding]:
        self._collect_header_vars()
        if isinstance(self.node, ast.Lambda):
            self.visit(self.node.body)
        else:
            for stmt in self.node.body:
                self.visit(stmt)
            if not _always_returns_value(self.node.body):
                self._add(
                    "xdp-verdict",
                    Severity.ERROR,
                    self.node.lineno,
                    "not every path returns an XdpVerdict",
                    "end every branch with `return XdpVerdict.XDP_*`",
                )
            self._check_dead_code(self.node.body)
        self._check_unused_maps()
        return self.findings

    def _check_dead_code(self, body: list[ast.stmt]) -> None:
        """Flag statements following an unconditional return/raise.

        One warning per statement list (everything after the first
        unreachable statement is equally dead), recursing into nested
        branch bodies so `if/else` arms are audited independently.
        """
        for index, stmt in enumerate(body[:-1]):
            if _always_returns_value([stmt]):
                self._add(
                    "xdp-dead-code",
                    Severity.WARNING,
                    body[index + 1].lineno,
                    "unreachable: every path above already returned",
                    "delete the dead statements; they would still be "
                    "synthesized into stages",
                )
                break
        for stmt in body:
            for child in (
                getattr(stmt, "body", None),
                getattr(stmt, "orelse", None),
                getattr(stmt, "finalbody", None),
            ):
                if isinstance(child, list) and child:
                    self._check_dead_code(child)
            for case in getattr(stmt, "cases", ()) or ():
                self._check_dead_code(case.body)
            for handler in getattr(stmt, "handlers", ()) or ():
                self._check_dead_code(handler.body)

    # ------------------------------------------------------------------
    def _collect_header_vars(self) -> None:
        """First pass: `name = ctx.ipv4` style bindings → header types."""
        for sub in ast.walk(self.node):
            if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                continue
            target = sub.targets[0]
            if not isinstance(target, ast.Name):
                continue
            header = self._header_type_of(sub.value)
            if header is None:
                continue
            known = self._header_vars.get(target.id)
            if known is not None and known is not header:
                self._header_vars[target.id] = None  # type: ignore[assignment]
            else:
                self._header_vars[target.id] = header

    def _header_type_of(self, expr: ast.expr) -> type | None:
        """The header type an expression evaluates to, if statically known."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self.ctx_name
        ):
            return _CTX_HEADER_PROPS.get(expr.attr)
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id == self.ctx_name
            and expr.func.attr == "header"
            and expr.args
            and isinstance(expr.args[0], ast.Name)
        ):
            resolved = self.names.get(expr.args[0].id)
            return resolved if isinstance(resolved, type) else None
        if isinstance(expr, ast.Name):
            return self._header_vars.get(expr.id)
        return None

    # ------------------------------------------------------------------
    # Hardware-unrepresentable constructs
    # ------------------------------------------------------------------
    def visit_While(self, node: ast.While) -> None:
        self._add(
            "xdp-loop",
            Severity.ERROR,
            node.lineno,
            "`while` loops cannot be unrolled into pipeline stages",
            "restructure as per-packet state in an XdpMap",
        )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if not _is_constant_range(node.iter):
            self._add(
                "xdp-loop",
                Severity.WARNING,
                node.lineno,
                "`for` over a non-constant iterable has no static bound",
                "iterate over `range(<constant>)` so the loop can unroll",
            )
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        self._add(
            "xdp-try",
            Severity.ERROR,
            node.lineno,
            "try/except has no hardware equivalent",
            "test preconditions explicitly and return a verdict",
        )
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, float):
            self._add(
                "xdp-float",
                Severity.ERROR,
                node.lineno,
                f"float constant {node.value!r}: the datapath is integer-only",
                "scale to integer units (e.g. nanoseconds, 1/1024ths)",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div):
            self._add(
                "xdp-float",
                Severity.ERROR,
                node.lineno,
                "true division produces floats; the datapath is integer-only",
                "use `//` (synthesizes to a shift for powers of two)",
            )
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is None and not isinstance(self.node, ast.Lambda):
            self._add(
                "xdp-verdict",
                Severity.ERROR,
                node.lineno,
                "bare `return` leaves the PPE without a verdict",
                "return an explicit XdpVerdict",
            )
        self.generic_visit(node)

    def _visit_alloc(self, node: ast.expr, what: str) -> None:
        self._add(
            "xdp-alloc",
            Severity.WARNING,
            node.lineno,
            f"{what} allocates per packet in the hot path",
            "keep per-flow state in a declared XdpMap",
        )

    def visit_List(self, node: ast.List) -> None:
        self._visit_alloc(node, "list literal")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._visit_alloc(node, "dict literal")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._visit_alloc(node, "set literal")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_alloc(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_alloc(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_alloc(node, "dict comprehension")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if self.func_name and func.id == self.func_name:
                self._add(
                    "xdp-recursion",
                    Severity.ERROR,
                    node.lineno,
                    f"recursive call to {self.func_name!r}: no call stack in hardware",
                    "unroll or restructure iteratively over map state",
                )
            if func.id in _ALLOC_BUILTINS:
                self._visit_alloc(node, f"{func.id}() call")
            if func.id in _WALLCLOCK_BARE_NAMES:
                self._wallclock(node, func.id)
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            root, attr = func.value.id, func.attr
            if root == "time" and attr in _WALLCLOCK_TIME_ATTRS:
                self._wallclock(node, f"time.{attr}")
            elif root == "datetime" and attr in _WALLCLOCK_DATETIME_ATTRS:
                self._wallclock(node, f"datetime.{attr}")
            elif root == "random":
                self._add(
                    "xdp-random",
                    Severity.ERROR,
                    node.lineno,
                    f"random.{attr}(): the PPE has no entropy source",
                    "derive pseudo-randomness from a packet-field hash",
                )
            elif attr in _MAP_METHODS:
                self._check_map_access(node, root, attr)
            elif root == self.ctx_name and attr == "rewrite":
                self._check_rewrite(node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == self.ctx_name
            and node.attr in _CTX_HEADER_PROPS
        ):
            self._check_header_touch(node, _CTX_HEADER_PROPS[node.attr])
        self.generic_visit(node)

    def _wallclock(self, node: ast.Call, what: str) -> None:
        self._add(
            "xdp-wallclock",
            Severity.ERROR,
            node.lineno,
            f"{what}() reads the wall clock; hardware time is virtual",
            f"use `{self.ctx_name or 'ctx'}.now_ns()`",
        )

    # ------------------------------------------------------------------
    # Declaration cross-checks (need a program)
    # ------------------------------------------------------------------
    def _check_map_access(self, node: ast.Call, name: str, method: str) -> None:
        resolved = self.names.get(name)
        if not isinstance(resolved, XdpMap):
            return
        self.accessed_maps.add(resolved.name)
        if self.program is not None and resolved not in self.program.maps:
            self._add(
                "xdp-undeclared-map",
                Severity.ERROR,
                node.lineno,
                f"{name}.{method}() accesses map {resolved.name!r} which is "
                "not in the program's declared maps",
                "pass the map in XdpProgram(maps=[...]) so it is synthesized",
            )

    def _check_unused_maps(self) -> None:
        if self.program is None:
            return
        for declared in self.program.maps:
            if declared.name not in self.accessed_maps:
                self._add(
                    "xdp-unused-map",
                    Severity.WARNING,
                    getattr(self.node, "lineno", 1),
                    f"declared map {declared.name!r} is never accessed; it "
                    "still occupies table memory",
                    "drop the declaration or use the map",
                )

    def _check_header_touch(self, node: ast.Attribute, header: type) -> None:
        if self.program is None or header in self.program.parses:
            return
        self._add(
            "xdp-undeclared-header",
            Severity.ERROR,
            node.lineno,
            f"touches {header.__name__} but `parses` does not declare it; "
            "the synthesized parser would not extract it",
            f"add {header.__name__} to XdpProgram(parses=...)",
        )

    def _check_rewrite(self, node: ast.Call) -> None:
        if self.program is None or len(node.args) < 2:
            return
        header = self._header_type_of(node.args[0])
        field_node = node.args[1]
        if header is None or not (
            isinstance(field_node, ast.Constant) and isinstance(field_node.value, str)
        ):
            return
        pair = (header, field_node.value)
        if pair not in self.program.rewrites:
            self._add(
                "xdp-undeclared-rewrite",
                Severity.ERROR,
                node.lineno,
                f"rewrites {header.__name__}.{field_node.value} but `rewrites` "
                "does not declare it; the action unit would be undersized",
                f"add ({header.__name__}, {field_node.value!r}) to rewrites",
            )


def check_program(program: XdpProgram) -> list[Finding]:
    """Statically analyze an :class:`XdpProgram`'s packet function."""
    node = _function_ast(program.func)
    if node is None:
        return [
            Finding(
                rule="xdp-no-source",
                severity=Severity.INFO,
                location=program.name,
                message="packet function source is unavailable; static "
                "checks skipped (declaration checks still apply at runtime)",
                hint="define the function in a regular module",
            )
        ]
    checker = _FunctionChecker(
        node,
        location=program.name,
        program=program,
        names=_resolved_names(program.func),
    )
    return sort_findings(checker.run())


def check_packet_function(
    node: ast.FunctionDef, location: str
) -> list[Finding]:
    """Construct-only checks for a packet function found in source form.

    Used by the examples scanner: no runtime program object exists, so
    declaration cross-checks are skipped and only hardware-representability
    rules run.
    """
    checker = _FunctionChecker(node, location=location)
    return sort_findings(checker.run())


def scan_source_file(path: str | Path) -> list[Finding]:
    """Find XDP packet functions in a source file and analyze them.

    A packet function is recognized by its first parameter being annotated
    ``XdpContext`` (possibly qualified).  The file is parsed, never
    imported, so scanning untrusted examples is safe.
    """
    path = Path(path)
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="xdp-syntax",
                severity=Severity.ERROR,
                location=f"{path.name}:{exc.lineno or 0}",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef) or not node.args.args:
            continue
        annotation = node.args.args[0].annotation
        text = ast.unparse(annotation) if annotation is not None else ""
        if not text.endswith("XdpContext"):
            continue
        findings += check_packet_function(node, f"{path.name}:{node.name}")
    return sort_findings(findings)
