"""The shared finding model for every static analyzer.

All three analysis passes (:mod:`~repro.analysis.irverify`,
:mod:`~repro.analysis.xdpcheck`, :mod:`~repro.analysis.simlint`) report
through one :class:`Finding` record so the CLI, the compiler integration,
and CI artifacts speak a single vocabulary: a stable rule id, a severity,
a human location, the message, and an optional fix hint.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` findings block compilation (``verify=True`` raises) and fail
    the ``flexsfp check`` exit code; ``WARNING`` findings surface in
    :attr:`SynthesisReport.notes <repro.hls.compiler.SynthesisReport>`;
    ``INFO`` findings are advisory only.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


# Stable ordering for reports: errors first, then warnings, then info.
_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Finding:
    """One static-analysis result.

    Parameters
    ----------
    rule:
        Stable rule identifier (``ir-*``, ``xdp-*``, or ``det-*``).
    severity:
        :class:`Severity` of the finding.
    location:
        Where it was found — ``app:stage``, ``program:line``, or
        ``path:line`` depending on the analyzer.
    message:
        What is wrong.
    hint:
        How to fix it (empty when there is no mechanical fix).
    """

    rule: str
    severity: Severity
    location: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.severity.value}[{self.rule}] {self.location}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def as_row(self) -> tuple[str, str, str, str, str]:
        """The CLI table row: (severity, rule, location, message, hint)."""
        return (self.severity.value, self.rule, self.location, self.message, self.hint)


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: severity, then location, then rule."""
    return sorted(
        findings,
        key=lambda f: (_SEVERITY_ORDER[f.severity], f.location, f.rule, f.message),
    )


def errors(findings: list[Finding]) -> list[Finding]:
    return [f for f in findings if f.severity is Severity.ERROR]


def warnings(findings: list[Finding]) -> list[Finding]:
    return [f for f in findings if f.severity is Severity.WARNING]


def severity_counts(findings: list[Finding]) -> dict[str, int]:
    counts = {level.value: 0 for level in Severity}
    for finding in findings:
        counts[finding.severity.value] += 1
    return counts
