"""Repo-wide determinism linter for the simulation source tree.

The golden-determinism suite promises that identical seeds reproduce every
statistic byte-for-byte.  That guarantee is easy to break silently: one
wall-clock read, one module-level ``random.*`` call, or one ``set``
iterated into ordered output reintroduces nondeterminism that the tests
may only catch intermittently.  This linter walks the ASTs of sim-critical
source and flags the constructs that history shows cause exactly that:

* ``det-wallclock`` — ``time.time()`` & friends, ``datetime.now()``.
* ``det-unseeded-random`` — ``random.Random()`` with no seed.
* ``det-global-random`` — module-level ``random.*`` calls (shared global
  RNG state couples independent components).
* ``det-set-order`` — iterating a set (or ``set()`` result) straight into
  ordered output; Python set order varies with hash seeding and history.
* ``det-hash-order`` — iterating the result of set algebra
  (``.union()``, ``.intersection()``, …) into ordered output; the result
  is a set whose order is hash-seed-dependent even when both operands
  were ordered.
* ``det-id-order`` — ordering by ``id()``: address-dependent and
  unreproducible across runs.

Intentional uses are suppressed inline::

    start = perf_counter()  # flexsfp: allow(det-wallclock)

Pragmas are themselves audited: every ``allow`` must name the rule(s) it
suppresses (a bare ``# flexsfp: allow`` still suppresses everything but
draws a ``det-allow-unnamed`` warning), and a named rule that suppresses
nothing on its line is a stale pragma (``det-allow-stale`` warning) — so
suppressions cannot silently outlive the code they excused.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

from .findings import Finding, Severity, sort_findings

_ALLOW_RE = re.compile(r"#\s*flexsfp:\s*allow(?:\(([^)]*)\))?")

_WALLCLOCK_TIME_FNS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_SET_PRODUCERS = frozenset({"set", "frozenset"})
_SET_OPERATIONS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter", "next"})
_ORDERING_CALLS = frozenset({"sorted", "min", "max"})


def default_lint_root() -> Path:
    """The sim-critical source tree: the installed ``repro`` package."""
    return Path(__file__).resolve().parent.parent


class _ModuleLinter(ast.NodeVisitor):
    def __init__(self, filename: str, source: str) -> None:
        self.filename = filename
        self.lines = source.splitlines()
        self.findings: list[Finding] = []
        # Bare names bound by `from time import perf_counter` etc.
        self.time_names: set[str] = set()
        self.datetime_names: set[str] = set()
        self.random_fn_names: set[str] = set()
        self.random_class_names: set[str] = set()
        # (line, rule) pairs an allow pragma actually suppressed — the
        # pragma audit marks any named rule without a hit as stale.
        self.suppression_hits: set[tuple[int, str]] = set()

    # ------------------------------------------------------------------
    def _suppressed(self, line: int, rule: str) -> bool:
        if not 1 <= line <= len(self.lines):
            return False
        match = _ALLOW_RE.search(self.lines[line - 1])
        if match is None:
            return False
        listed = match.group(1)
        if listed is None or not listed.strip():
            self.suppression_hits.add((line, rule))
            return True
        if rule in {item.strip() for item in listed.split(",")}:
            self.suppression_hits.add((line, rule))
            return True
        return False

    def _add(self, rule: str, line: int, message: str, hint: str = "") -> None:
        if self._suppressed(line, rule):
            return
        self.findings.append(
            Finding(
                rule,
                Severity.ERROR,
                f"{self.filename}:{line}",
                message,
                hint,
            )
        )

    # ------------------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "time" and alias.name in _WALLCLOCK_TIME_FNS:
                self.time_names.add(bound)
            elif node.module == "datetime" and alias.name == "datetime":
                self.datetime_names.add(bound)
            elif node.module == "random":
                if alias.name == "Random":
                    self.random_class_names.add(bound)
                else:
                    self.random_fn_names.add(bound)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def _is_set_expr(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in _SET_PRODUCERS
        )

    def _flag_set_iteration(self, expr: ast.expr, context: str) -> None:
        if self._is_set_expr(expr):
            self._add(
                "det-set-order",
                expr.lineno,
                f"{context} iterates a set; iteration order is "
                "hash-seed-dependent",
                "wrap in sorted(...) before it feeds ordered output",
            )
        elif (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _SET_OPERATIONS
        ):
            self._add(
                "det-hash-order",
                expr.lineno,
                f"{context} iterates a .{expr.func.attr}() result; set "
                "algebra returns a set whose order is hash-seed-dependent",
                "wrap in sorted(...) before it feeds ordered output",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._flag_set_iteration(node.iter, "comprehension")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._visit_name_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            self._visit_attribute_call(node, func)
        self.generic_visit(node)

    def _visit_name_call(self, node: ast.Call, name: str) -> None:
        if name in self.time_names:
            self._add(
                "det-wallclock",
                node.lineno,
                f"{name}() reads the wall clock inside sim-critical code",
                "use the simulator's virtual time",
            )
        elif name in self.random_fn_names:
            self._add(
                "det-global-random",
                node.lineno,
                f"{name}() draws from the shared module-level RNG",
                "draw from a seeded random.Random instance",
            )
        elif name in self.random_class_names or name == "Random":
            if name in self.random_class_names and not node.args and not node.keywords:
                self._add(
                    "det-unseeded-random",
                    node.lineno,
                    "Random() without a seed is seeded from the OS",
                    "pass an explicit seed: Random(seed)",
                )
        elif name in _ORDERED_CONSUMERS and node.args:
            self._flag_set_iteration(node.args[0], f"{name}()")
        elif name in _ORDERING_CALLS:
            self._check_id_ordering(node)

    def _visit_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        if not isinstance(func.value, ast.Name):
            if func.attr == "sort":
                self._check_id_ordering(node)
            return
        root, attr = func.value.id, func.attr
        if root == "time" and attr in _WALLCLOCK_TIME_FNS:
            self._add(
                "det-wallclock",
                node.lineno,
                f"time.{attr}() reads the wall clock inside sim-critical code",
                "use the simulator's virtual time",
            )
        elif root == "datetime" and attr in _WALLCLOCK_DATETIME_FNS:
            self._add(
                "det-wallclock",
                node.lineno,
                f"datetime.{attr}() reads the wall clock inside sim-critical code",
                "use the simulator's virtual time",
            )
        elif root == "random":
            if attr == "Random":
                if not node.args and not node.keywords:
                    self._add(
                        "det-unseeded-random",
                        node.lineno,
                        "random.Random() without a seed is seeded from the OS",
                        "pass an explicit seed: random.Random(seed)",
                    )
            else:
                self._add(
                    "det-global-random",
                    node.lineno,
                    f"random.{attr}() draws from the shared module-level RNG",
                    "draw from a seeded random.Random instance",
                )
        elif attr == "sort":
            self._check_id_ordering(node)
        elif root in self.datetime_names and attr in _WALLCLOCK_DATETIME_FNS:
            self._add(
                "det-wallclock",
                node.lineno,
                f"{root}.{attr}() reads the wall clock inside sim-critical code",
                "use the simulator's virtual time",
            )

    # ------------------------------------------------------------------
    def audit_pragmas(self, source: str) -> None:
        """Second pass: every allow pragma must be named and earning its keep.

        Only genuine COMMENT tokens are audited (a pragma quoted inside a
        docstring is documentation, not a suppression), which is why this
        tokenizes instead of rescanning raw lines.
        """
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for lineno, comment in comments:
            match = _ALLOW_RE.search(comment)
            if match is None:
                continue
            listed = match.group(1)
            if listed is None or not listed.strip():
                self.findings.append(
                    Finding(
                        "det-allow-unnamed",
                        Severity.WARNING,
                        f"{self.filename}:{lineno}",
                        "bare '# flexsfp: allow' suppresses every rule on "
                        "the line",
                        "name the suppressed rule(s): "
                        "# flexsfp: allow(det-...)",
                    )
                )
                continue
            for item in listed.split(","):
                rule = item.strip()
                if rule and (lineno, rule) not in self.suppression_hits:
                    self.findings.append(
                        Finding(
                            "det-allow-stale",
                            Severity.WARNING,
                            f"{self.filename}:{lineno}",
                            f"allow({rule}) suppresses nothing on this line",
                            "delete the stale pragma",
                        )
                    )

    def _check_id_ordering(self, node: ast.Call) -> None:
        """Flag id() used anywhere inside a sorting/ordering call."""
        for sub in ast.walk(node):
            if sub is node:
                continue
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                self._add(
                    "det-id-order",
                    sub.lineno,
                    "ordering by id(): object addresses vary run to run",
                    "order by a stable field (name, index, key)",
                )


def lint_source(source: str, filename: str) -> list[Finding]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Finding(
                rule="det-syntax",
                severity=Severity.ERROR,
                location=f"{filename}:{exc.lineno or 0}",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    linter = _ModuleLinter(filename, source)
    linter.visit(tree)
    linter.audit_pragmas(source)
    return linter.findings


def lint_file(path: str | Path) -> list[Finding]:
    path = Path(path)
    return lint_source(path.read_text(), str(path))


def lint_paths(paths: list[str | Path] | None = None) -> list[Finding]:
    """Lint every ``*.py`` file under the given paths (default: repro)."""
    roots = [Path(p) for p in paths] if paths else [default_lint_root()]
    findings: list[Finding] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings += lint_file(file)
    return sort_findings(findings)
