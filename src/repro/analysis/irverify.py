"""Semantic verification of pipeline IR, ahead of synthesis.

:class:`~repro.hls.ir.PipelineSpec` construction already enforces local
invariants (required params, unique stage names).  This verifier checks the
*global* properties the build flow (§4.2) promises to reject before a
bitstream ever reaches a cable:

* ``ir-no-parser`` / ``ir-parser-order`` — tables and actions need parsed
  headers in front of them.
* ``ir-deparser-missing`` / ``ir-deparser-order`` — frames must be
  re-serialized once, at the end of the pipeline.
* ``ir-key-width`` — a table cannot match more key bits than the parser
  extracts.
* ``ir-missing-checksum`` — rewriting IP/TCP/UDP fields without the
  RFC 1624 update unit emits corrupt frames on the wire.
* ``ir-chain-depth`` — the paper's §5.3 guidance: 3-4 match-action chain
  stages per PPE.
* ``ir-redundant-stage`` — stages the optimization passes would merge or
  delete (run :func:`~repro.hls.passes.optimize` before building).
* ``ir-resource-fit`` — a pre-synthesis estimate against the device
  catalog, attributing any overflow to the stages that caused it.
"""

from __future__ import annotations

from ..core.shells import ShellSpec
from ..errors import CompileError, ResourceError
from ..fpga.resources import FPGADevice, MPF200T, ResourceVector
from ..hls.ir import PipelineSpec, StageKind
from ..packet import IPv4, IPv6, TCP, UDP
from .findings import Finding, Severity, sort_findings

# The paper's §5.3 guidance: chains of 3-4 match-action stages fit the
# per-PPE budget; deeper chains should be split across PPEs.
MAX_CHAIN_DEPTH = 4

# Rewriting any of these headers' fields perturbs an internet checksum
# (IPv4 header checksum, or the TCP/UDP pseudo-header/payload checksum),
# so the pipeline must carry a CHECKSUM stage to fix frames up.
CHECKSUM_RELEVANT_HEADERS = (IPv4, IPv6, TCP, UDP)

_TABLE_KINDS = (
    StageKind.EXACT_TABLE,
    StageKind.LPM_TABLE,
    StageKind.TERNARY_TABLE,
)


def _loc(spec: PipelineSpec, stage_name: str | None = None) -> str:
    return f"{spec.name}:{stage_name}" if stage_name else spec.name


def _check_structure(spec: PipelineSpec) -> list[Finding]:
    findings: list[Finding] = []
    kinds = [stage.kind for stage in spec.stages]

    needs_parser = [
        stage
        for stage in spec.stages
        if stage.kind in _TABLE_KINDS or stage.kind is StageKind.ACTION
    ]
    parser_index = next(
        (i for i, kind in enumerate(kinds) if kind is StageKind.PARSER), None
    )
    if needs_parser and parser_index is None:
        findings.append(
            Finding(
                rule="ir-no-parser",
                severity=Severity.ERROR,
                location=_loc(spec, needs_parser[0].name),
                message=(
                    f"stage {needs_parser[0].name!r} matches/rewrites headers "
                    "but the pipeline has no parser"
                ),
                hint="add a PARSER stage sized for the headers the app touches",
            )
        )
    elif parser_index is not None:
        for i, stage in enumerate(spec.stages[:parser_index]):
            if stage.kind in _TABLE_KINDS or stage.kind is StageKind.ACTION:
                findings.append(
                    Finding(
                        rule="ir-parser-order",
                        severity=Severity.ERROR,
                        location=_loc(spec, stage.name),
                        message=(
                            f"stage {stage.name!r} ({stage.kind.value}) runs "
                            "before the parser has extracted any headers"
                        ),
                        hint="move the PARSER stage to the front of the pipeline",
                    )
                )

    if StageKind.DEPARSER not in kinds:
        findings.append(
            Finding(
                rule="ir-deparser-missing",
                severity=Severity.WARNING,
                location=_loc(spec),
                message="pipeline never re-serializes frames (no DEPARSER stage)",
                hint="append a DEPARSER sized like the parser",
            )
        )
    else:
        deparser_index = kinds.index(StageKind.DEPARSER)
        for stage in spec.stages[deparser_index + 1 :]:
            if stage.kind not in (StageKind.FIFO, StageKind.DEPARSER):
                findings.append(
                    Finding(
                        rule="ir-deparser-order",
                        severity=Severity.ERROR,
                        location=_loc(spec, stage.name),
                        message=(
                            f"stage {stage.name!r} ({stage.kind.value}) follows "
                            "the deparser; headers are already serialized"
                        ),
                        hint="only FIFOs may follow the deparser",
                    )
                )
    return findings


def _check_key_widths(spec: PipelineSpec) -> list[Finding]:
    parsed_bits = 8 * sum(
        stage.param("header_bytes") for stage in spec.stages_of(StageKind.PARSER)
    )
    if parsed_bits == 0:
        return []
    findings = []
    for stage in spec.table_stages():
        key_bits = stage.param("key_bits")
        if key_bits > parsed_bits:
            findings.append(
                Finding(
                    rule="ir-key-width",
                    severity=Severity.ERROR,
                    location=_loc(spec, stage.name),
                    message=(
                        f"table matches {key_bits} key bits but the parser "
                        f"only extracts {parsed_bits} header bits"
                    ),
                    hint="widen the parser or narrow the table key",
                )
            )
    return findings


def _check_checksum(
    spec: PipelineSpec, rewrites: list[tuple[type, str]] | None
) -> list[Finding]:
    has_checksum = bool(spec.stages_of(StageKind.CHECKSUM))
    if has_checksum:
        return []
    if rewrites is not None:
        touched = sorted(
            {
                f"{header.__name__}.{field}"
                for header, field in rewrites
                if header in CHECKSUM_RELEVANT_HEADERS
            }
        )
        if touched:
            return [
                Finding(
                    rule="ir-missing-checksum",
                    severity=Severity.ERROR,
                    location=_loc(spec),
                    message=(
                        "rewrites checksummed fields "
                        f"({', '.join(touched)}) without a CHECKSUM stage"
                    ),
                    hint="declare uses_checksum=True / add a CHECKSUM stage",
                )
            ]
        return []
    # No field-level knowledge: an ACTION without checksum hardware is only
    # advisory (VLAN/Ethernet rewrites legitimately need none).
    if spec.stages_of(StageKind.ACTION):
        return [
            Finding(
                rule="ir-missing-checksum",
                severity=Severity.INFO,
                location=_loc(spec),
                message=(
                    "pipeline rewrites headers but has no CHECKSUM stage; "
                    "fine only if no IP/TCP/UDP field is touched"
                ),
                hint="add a CHECKSUM stage if L3/L4 fields are rewritten",
            )
        ]
    return []


def _check_chain_depth(spec: PipelineSpec) -> list[Finding]:
    depth = spec.chain_depth
    if depth <= MAX_CHAIN_DEPTH:
        return []
    return [
        Finding(
            rule="ir-chain-depth",
            severity=Severity.WARNING,
            location=_loc(spec),
            message=(
                f"match-action chain is {depth} stages deep; the paper "
                f"budgets {MAX_CHAIN_DEPTH} per PPE (§5.3)"
            ),
            hint="split the chain across PPEs or merge tables",
        )
    ]


def _check_redundant_stages(spec: PipelineSpec) -> list[Finding]:
    # Run the optimization passes directly (not optimize(), which also
    # prices the spec — dead stages like a zero-counter bank are exactly
    # the ones the cost model refuses to price).
    from ..hls.passes import ALL_PASSES

    stages = list(spec.stages)
    for _ in range(16):
        new_stages = stages
        for pass_fn in ALL_PASSES:
            new_stages = pass_fn(new_stages)
        if new_stages == stages:
            break
        stages = new_stages
    if len(stages) >= len(spec.stages):
        return []
    removed = sorted(
        {s.name for s in spec.stages} - {s.name for s in stages}
    )
    return [
        Finding(
            rule="ir-redundant-stage",
            severity=Severity.WARNING,
            location=_loc(spec),
            message=(
                f"{len(spec.stages) - len(stages)} stage(s) are dead "
                f"or mergeable ({', '.join(removed)})"
            ),
            hint="run repro.hls.optimize() before building",
        )
    ]


def _check_resource_fit(
    spec: PipelineSpec,
    device: FPGADevice,
    shell: ShellSpec | None,
    datapath_bits: int,
) -> list[Finding]:
    from ..hls.compiler import price_pipeline

    try:
        app_total, per_stage = price_pipeline(spec, datapath_bits)
    except (CompileError, ResourceError):
        return []  # unpriceable specs already carry structural errors
    components = [app_total]
    if shell is not None:
        components.extend(vec for _, vec in sorted(shell.base_components().items()))
    total = ResourceVector.sum(components)
    over_keys = [
        key
        for key, used in total.as_dict().items()
        if used > getattr(device, key)
    ]
    if not over_keys:
        return []
    findings = []
    for key in over_keys:
        used = getattr(total, key)
        # Attribute the overflow: which stages consume this resource most.
        contributions = sorted(
            (
                (getattr(vec, key), name)
                for name, vec in per_stage.items()
                if getattr(vec, key) > 0
            ),
            reverse=True,
        )
        top = ", ".join(f"{name}={amount}" for amount, name in contributions[:3])
        findings.append(
            Finding(
                rule="ir-resource-fit",
                severity=Severity.ERROR,
                location=_loc(spec),
                message=(
                    f"resource overflow: estimated {key} usage {used} exceeds "
                    f"{device.name} capacity {getattr(device, key)}"
                    + (f"; biggest stages: {top}" if top else "")
                ),
                hint="shrink the named stages or target a larger device",
            )
        )
    return findings


def verify_pipeline(
    spec: PipelineSpec,
    device: FPGADevice = MPF200T,
    shell: ShellSpec | None = None,
    datapath_bits: int | None = None,
    rewrites: list[tuple[type, str]] | None = None,
) -> list[Finding]:
    """Run every IR rule over ``spec``; return sorted findings.

    ``rewrites`` (header type, field) pairs — available when the spec was
    lowered from an :class:`~repro.hls.xdp.XdpProgram` — upgrade the
    checksum rule from advisory to exact.  ``shell`` includes the shell's
    base components in the resource-fit estimate, matching what
    :func:`~repro.hls.compiler.compile_pipeline` will build.
    """
    if datapath_bits is None:
        datapath_bits = shell.datapath_bits if shell is not None else 64
    findings = _check_structure(spec)
    findings += _check_key_widths(spec)
    findings += _check_checksum(spec, rewrites)
    findings += _check_chain_depth(spec)
    findings += _check_redundant_stages(spec)
    findings += _check_resource_fit(spec, device, shell, datapath_bits)
    return sort_findings(findings)
