"""IR effect inference: prove burst fusibility and line-rate feasibility.

The compiled engine tier (``repro.hls.compile_executor``) fuses whole
same-flow bursts through one :class:`~repro.core.flowcache.FlowRecipe`
application.  That is only sound when the program's effects commute across
the frames of a burst — no arrival-time-dependent output, no
non-commutative per-flow state.  Early revisions *declared* this with a
hand-written ``compiled_profile()`` dict per application; this module
*derives* it from the pipeline IR instead, the way hXDP/P4 toolchains
answer feasibility questions: with a dataflow pass, not runtime trust.

The pass abstractly interprets a :class:`~repro.hls.ir.PipelineSpec` stage
by stage into a per-stage effect record (:class:`StageEffect`: header
read/write bits, table/meter state access, arrival-time reads, verdict
dependence, commutativity) and folds the records into an
:class:`EffectSummary`:

* **fusibility proof** — a burst mode (``pure`` / ``meter`` /
  ``unfusible``) with the blocking stages named when fusion is unsound,
  plus derived ``key_bits``/``rewrite_bits`` that size the fused executor
  hardware (replacing the hand-declared profile numbers);
* **worst-case timing** — per-frame table-port conflict cycles that feed
  :meth:`repro.fpga.timing.TimingSpec.sustains_line_rate`, so
  ``flexsfp check`` statically rejects programs that cannot hold the
  shell's line rate;
* **a canonical digest** — recorded in ``flexsfp.run/1`` knob blocks so
  artifact diffs detect analysis drift.

Modeling assumptions (the abstraction's contract):

* datapath tables (``EXACT/LPM/TERNARY``) are match-only in the fast
  path; writes come from the control plane and are serialized against
  in-flight frames by the engine's pre-mutation drain hook;
* ``COUNTERS`` are commutative per-flow state (sum of packets/bytes), so
  counting a burst in aggregate equals counting it per frame — unless the
  counted value depends on arrival time;
* ``METERS`` are non-commutative read-modify-write state keyed by arrival
  time (token refill).  A meter burst is still burst-safe when replayed
  *sequentially* inside the fused lane (the engine's meter mode), because
  the per-frame arithmetic depends only on (size, arrival time, meter
  state), never on header contents of earlier frames;
* ``TIMESTAMP`` makes the arrival clock visible to the program.  If any
  writer stage (``ACTION``, ``COUNTERS``) can fold that value into
  headers or state, every frame of a burst would produce distinct output
  and fusion is unsound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..core.shells import ShellSpec
from ..fpga.timing import TimingSpec
from ..hls.ir import PipelineSpec, Stage, StageKind
from .findings import Finding, Severity, sort_findings

# Burst modes the classifier can prove.
MODE_PURE = "pure"
MODE_METER = "meter"
MODE_UNFUSIBLE = "unfusible"

# Synthesized table RAMs are dual-ported (LSRAM on PolarFire-class parts):
# two accesses per cycle are free, each access beyond that double-pumps and
# stalls the frame one cycle.
TABLE_SRAM_PORTS = 2

# Smallest fused-executor key the hash unit accepts: programs whose verdict
# depends on no table key (pure header classification, e.g. a VLAN tagger)
# still hash *something* to index the flow cache.
MIN_KEY_BITS = 16

_TABLE_KINDS = (
    StageKind.EXACT_TABLE,
    StageKind.LPM_TABLE,
    StageKind.TERNARY_TABLE,
)


@dataclass(frozen=True)
class StageEffect:
    """The effect lattice value for one pipeline stage.

    Bit counts are per frame; ``table_accesses`` is per frame *per
    direction* (the shell multiplies by the directions it serves).
    ``commutative`` states whether the stage's state writes commute across
    reordered/aggregated frames; ``reads_time`` whether the stage consumes
    the arrival clock.
    """

    stage: str
    kind: str
    header_read_bits: int = 0
    header_write_bits: int = 0
    state_read_bits: int = 0
    state_write_bits: int = 0
    table_accesses: int = 0
    reads_time: bool = False
    commutative: bool = True
    verdict_dep: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "stage": self.stage,
            "kind": self.kind,
            "header_read_bits": self.header_read_bits,
            "header_write_bits": self.header_write_bits,
            "state_read_bits": self.state_read_bits,
            "state_write_bits": self.state_write_bits,
            "table_accesses": self.table_accesses,
            "reads_time": self.reads_time,
            "commutative": self.commutative,
            "verdict_dep": self.verdict_dep,
        }


@dataclass(frozen=True)
class EffectSummary:
    """Folded per-app effect report: the fusibility proof.

    ``burst_mode`` is the classification the compiled engine keys on:

    * ``pure`` — every effect is a pure function of (headers, direction,
      table state); one decision stands for a whole same-flow burst.
    * ``meter`` — effects additionally read arrival time through a
      ``METERS`` stage; bursts fuse through sequential meter replay.
    * ``unfusible`` — arrival time can reach headers or state through a
      writer stage; ``blockers`` names the stages that prove it.

    ``key_bits``/``rewrite_bits`` are the *derived* fused-executor widths:
    the flow key cannot need more bits than the narrowest of (parsed
    header bits, the total match-key bits the program compares), and the
    rewrite lane carries exactly the ACTION stages' declared bits.
    """

    pipeline: str
    effects: tuple[StageEffect, ...]
    parsed_bits: int
    key_bits: int
    rewrite_bits: int
    burst_mode: str
    blockers: tuple[str, ...]

    @property
    def fusible(self) -> bool:
        return self.burst_mode != MODE_UNFUSIBLE

    def conflict_cycles(self, directions: int = 1) -> int:
        """Per-frame stall cycles from table-port conflicts.

        Each table RAM serves ``TABLE_SRAM_PORTS`` accesses per cycle;
        a stage needing more (``lookups_per_frame`` > 1, or one lookup
        per direction on a two-way shell, doubled again for meter
        read-modify-write) double-pumps and charges one stall cycle per
        excess access.
        """
        total = 0
        for effect in self.effects:
            if not effect.table_accesses:
                continue
            accesses = effect.table_accesses * directions
            total += max(0, accesses - TABLE_SRAM_PORTS)
        return total

    def to_dict(self) -> dict[str, object]:
        return {
            "pipeline": self.pipeline,
            "parsed_bits": self.parsed_bits,
            "key_bits": self.key_bits,
            "rewrite_bits": self.rewrite_bits,
            "burst_mode": self.burst_mode,
            "fusible": self.fusible,
            "blockers": list(self.blockers),
            "effects": [effect.to_dict() for effect in self.effects],
        }

    def digest(self) -> str:
        """Canonical content digest (detects analysis/IR drift in diffs)."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class LineRateVerdict:
    """Static line-rate feasibility at a shell's default operating point."""

    timing: TimingSpec
    conflict_cycles: int
    worst_frame: int
    sustained: bool

    def to_dict(self) -> dict[str, object]:
        return {
            "clock_mhz": round(self.timing.clock_hz / 1e6, 3),
            "datapath_bits": self.timing.datapath_bits,
            "conflict_cycles": self.conflict_cycles,
            "worst_frame": self.worst_frame,
            "sustained": self.sustained,
        }


# ----------------------------------------------------------------------
# Per-stage abstract interpretation
# ----------------------------------------------------------------------
def _stage_effect(stage: Stage) -> StageEffect:
    """Abstract one stage into its effect lattice value."""
    kind = stage.kind
    name = stage.name
    kind_value = kind.value
    if kind is StageKind.PARSER:
        bits = stage.param("header_bytes") * 8
        return StageEffect(name, kind_value, header_read_bits=bits)
    if kind is StageKind.DEPARSER:
        bits = stage.param("header_bytes") * 8
        return StageEffect(name, kind_value, header_write_bits=bits)
    if kind in _TABLE_KINDS:
        lookups = int(stage.params.get("lookups_per_frame", 1))
        return StageEffect(
            name,
            kind_value,
            header_read_bits=stage.param("key_bits"),
            state_read_bits=stage.param("key_bits") + stage.param("value_bits"),
            table_accesses=lookups,
            verdict_dep=True,
        )
    if kind is StageKind.ACTION:
        bits = stage.param("rewrite_bits")
        return StageEffect(name, kind_value, header_write_bits=bits)
    if kind is StageKind.CHECKSUM:
        return StageEffect(
            name, kind_value, header_read_bits=16, header_write_bits=16
        )
    if kind is StageKind.HASH:
        return StageEffect(
            name, kind_value, header_read_bits=stage.param("key_bits")
        )
    if kind is StageKind.COUNTERS:
        # Per-flow packet/byte sums: commutative state, no verdict feed.
        return StageEffect(
            name, kind_value, state_write_bits=64 * stage.param("counters")
        )
    if kind is StageKind.METERS:
        # Token buckets: read-modify-write keyed by arrival time.  The
        # access count is doubled — one read port plus one write port per
        # frame — which is what makes a two-way meter double-pump.
        return StageEffect(
            name,
            kind_value,
            state_read_bits=64,
            state_write_bits=64,
            table_accesses=2,
            reads_time=True,
            commutative=False,
            verdict_dep=True,
        )
    if kind is StageKind.TIMESTAMP:
        return StageEffect(name, kind_value, reads_time=True)
    # FIFO / FLOW_CACHE: plumbing beside the datapath, no program effects.
    return StageEffect(name, kind_value)


def _classify(effects: tuple[StageEffect, ...]) -> tuple[str, tuple[str, ...]]:
    """Fold stage effects into (burst_mode, blockers).

    The taint argument: a ``TIMESTAMP`` stage makes the arrival clock a
    live value for the whole program (IR stage order is structural, not
    def-use order — the ratelimiter stamps *after* its meter stage).  The
    value is harmless until a writer can observe it:

    * ``METERS`` absorbs it into the meter lane — sequentially replayable,
      so the program is ``meter``-fusible (unless a header writer could
      also see it);
    * ``ACTION`` / ``COUNTERS`` with a live clock can fold per-frame times
      into headers or state — every frame's output is distinct and the
      program is unfusible.
    """
    by_kind: dict[str, list[StageEffect]] = {}
    for effect in effects:
        by_kind.setdefault(effect.kind, []).append(effect)
    meters = by_kind.get(StageKind.METERS.value, [])
    stamps = by_kind.get(StageKind.TIMESTAMP.value, [])
    actions = by_kind.get(StageKind.ACTION.value, [])
    counters = by_kind.get(StageKind.COUNTERS.value, [])
    if meters:
        if stamps and actions:
            return MODE_UNFUSIBLE, tuple(
                f"{stage.stage}: header rewrite can observe the arrival "
                "clock made live by a timestamp stage"
                for stage in actions
            )
        return MODE_METER, ()
    if stamps:
        writers = actions + counters
        if writers:
            blockers = tuple(
                f"{stamp.stage}: arrival clock flows into writer stage "
                f"{writer.stage!r} ({writer.kind}); per-frame outputs differ"
                for stamp in stamps
                for writer in writers
            )
            return MODE_UNFUSIBLE, blockers
    return MODE_PURE, ()


def analyze_pipeline(spec: PipelineSpec) -> EffectSummary:
    """Run the effect dataflow over one pipeline spec."""
    effects = tuple(_stage_effect(stage) for stage in spec.stages)
    parsed_bits = max(
        (e.header_read_bits for e in effects if e.kind == StageKind.PARSER.value),
        default=0,
    )
    match_bits = sum(
        stage.param("key_bits") for stage in spec.stages if stage.kind in _TABLE_KINDS
    )
    if match_bits:
        key_bits = min(match_bits, parsed_bits) if parsed_bits else match_bits
    else:
        key_bits = MIN_KEY_BITS
    key_bits = max(key_bits, MIN_KEY_BITS)
    rewrite_bits = sum(
        e.header_write_bits
        for e in effects
        if e.kind == StageKind.ACTION.value
    )
    burst_mode, blockers = _classify(effects)
    return EffectSummary(
        pipeline=spec.name,
        effects=effects,
        parsed_bits=parsed_bits,
        key_bits=key_bits,
        rewrite_bits=rewrite_bits,
        burst_mode=burst_mode,
        blockers=blockers,
    )


def analyze_app(app) -> EffectSummary:
    """Effect summary of an application's synthesized pipeline."""
    return analyze_pipeline(app.pipeline_spec())


# ----------------------------------------------------------------------
# Runtime engagement and the legacy-profile bridge
# ----------------------------------------------------------------------
def fusion_engagement(app, summary: EffectSummary) -> str | None:
    """Which fused runtime lane the app can actually drive, if any.

    The proof says fusion is *sound*; engagement says the application
    implements the runtime hooks that lane needs — ``flow_key``/``decide``
    overrides for the pure recipe lane, a ``burst_plan`` hook for the
    sequential meter lane.  Proven-but-unengaged apps simply deopt.
    """
    if not summary.fusible:
        return None
    if summary.burst_mode == MODE_METER:
        return MODE_METER if callable(getattr(app, "burst_plan", None)) else None
    from ..core.ppe import PPEApplication  # deferred: avoid import cycle

    cls = type(app)
    overrides = (
        getattr(cls, "flow_key", None) is not PPEApplication.flow_key
        and getattr(cls, "decide", None) is not PPEApplication.decide
    )
    return MODE_PURE if overrides else None


def profile_findings(app, summary: EffectSummary) -> list[Finding]:
    """Cross-check a legacy hand-written ``compiled_profile`` declaration.

    The analysis verdict is authoritative; a surviving profile dict that
    disagrees with it is an error (the declaration the compiled tier used
    to trust was wrong).  Matching declarations are merely redundant.
    """
    profile_fn = getattr(app, "compiled_profile", None)
    if not callable(profile_fn):
        return []
    profile = profile_fn() or {}
    name = getattr(app, "name", type(app).__name__)
    mismatches: list[str] = []
    declared_fusible = bool(profile.get("fusible"))
    if declared_fusible != summary.fusible:
        mismatches.append(
            f"fusible: declared {declared_fusible}, derived {summary.fusible}"
        )
    if declared_fusible and summary.fusible:
        for field_name, derived in (
            ("key_bits", summary.key_bits),
            ("rewrite_bits", summary.rewrite_bits),
        ):
            declared = profile.get(field_name)
            if declared is not None and int(declared) != derived:
                mismatches.append(
                    f"{field_name}: declared {declared}, derived {derived}"
                )
    if not mismatches:
        return []
    return [
        Finding(
            "effect-profile-mismatch",
            Severity.ERROR,
            f"{name}:compiled_profile",
            "legacy compiled_profile() disagrees with the derived effect "
            "summary: " + "; ".join(mismatches),
            "delete the hand-written profile; the analysis derives the "
            "fusion contract from the pipeline IR",
        )
    ]


# ----------------------------------------------------------------------
# Timing: worst-case cycles against a shell operating point
# ----------------------------------------------------------------------
def line_rate_verdict(
    summary: EffectSummary, shell: ShellSpec
) -> LineRateVerdict:
    """Static line-rate feasibility at the shell's default clock.

    Evaluates the same operating point ``compile_pipeline`` would pick
    (the slowest standard clock sustaining the base streaming beats) and
    charges the effect-derived per-frame conflict cycles on top — the
    cycles the clock selection never saw.
    """
    directions = 1 if shell.rate_multiplier == 1.0 else 2
    timing = TimingSpec(shell.datapath_bits, shell.standard_ppe_clock_hz())
    extra = summary.conflict_cycles(directions)
    worst_frame, sustained = timing.worst_case_frame(
        shell.ppe_offered_rate_bps, extra_cycles=extra
    )
    return LineRateVerdict(
        timing=timing,
        conflict_cycles=extra,
        worst_frame=worst_frame,
        sustained=sustained,
    )


def effect_findings(
    app,
    shell: ShellSpec | None = None,
    summary: EffectSummary | None = None,
    include_profile: bool = True,
) -> list[Finding]:
    """Machine-readable effect report for one application.

    * ``effect-line-rate`` (error): the derived worst-case per-frame
      cycle count cannot hold the shell's offered rate — the program is
      statically rejected before any bitstream exists.
    * ``effect-port-conflict`` (warning): a table needs more per-frame
      accesses than its RAM has ports; each excess access double-pumps.
    * ``effect-unfusible`` (info): which instruction blocks burst fusion.
    * ``effect-profile-mismatch`` (error): a stale hand-written profile.
    """
    if summary is None:
        summary = analyze_app(app)
    if shell is None:
        shell = ShellSpec()
    name = getattr(app, "name", summary.pipeline)
    findings = profile_findings(app, summary) if include_profile else []
    directions = 1 if shell.rate_multiplier == 1.0 else 2
    for effect in summary.effects:
        if not effect.table_accesses:
            continue
        accesses = effect.table_accesses * directions
        if accesses > TABLE_SRAM_PORTS:
            findings.append(
                Finding(
                    "effect-port-conflict",
                    Severity.WARNING,
                    f"{name}:{effect.stage}",
                    f"{accesses} table accesses/frame exceed the RAM's "
                    f"{TABLE_SRAM_PORTS} ports; each excess access "
                    "double-pumps and stalls the frame one cycle",
                    "reduce lookups_per_frame or replicate the table",
                )
            )
    verdict = line_rate_verdict(summary, shell)
    if not verdict.sustained:
        findings.append(
            Finding(
                "effect-line-rate",
                Severity.ERROR,
                f"{name}:pipeline",
                f"worst-case frame ({verdict.worst_frame} B) needs "
                f"{verdict.conflict_cycles} conflict cycle(s) on top of the "
                f"streaming beats; {verdict.timing.clock_hz / 1e6:.2f} MHz × "
                f"{verdict.timing.datapath_bits} b cannot sustain "
                f"{shell.ppe_offered_rate_bps / 1e9:.1f} Gbps",
                "remove the port conflicts, widen the datapath, or lower "
                "the line rate",
            )
        )
    if not summary.fusible:
        for blocker in summary.blockers:
            findings.append(
                Finding(
                    "effect-unfusible",
                    Severity.INFO,
                    f"{name}:pipeline",
                    f"burst fusion blocked — {blocker}",
                    "compiled-tier bursts deopt to the exact per-frame lane",
                )
            )
    return sort_findings(findings)


_CORPUS_DIGEST: dict[tuple[str, ...], str] = {}


def corpus_digest(app_names=None) -> str:
    """One digest over every bundled app's effect summary.

    Recorded in ``flexsfp.run/1`` knob blocks: any change to the analysis
    or to a bundled pipeline shifts the digest, so artifact diffs surface
    analysis drift even when the run's metrics happen to agree.  The
    result is a pure function of the bundled IR, so it is memoized.
    """
    from ..apps import APP_FACTORIES, create_app  # deferred: avoid cycle

    names = tuple(sorted(APP_FACTORIES) if app_names is None else sorted(app_names))
    cached = _CORPUS_DIGEST.get(names)
    if cached is not None:
        return cached
    blob = hashlib.sha256()
    for name in names:
        summary = analyze_app(create_app(name))
        blob.update(name.encode())
        blob.update(summary.digest().encode())
    digest = _CORPUS_DIGEST[names] = blob.hexdigest()[:16]
    return digest
