"""Typed runtime settings: every ``FLEXSFP_*`` knob parsed in one place.

The simulation grew environment switches organically — the flow-cache
fast path, the PPE batch size, the benchmark metrics-export directory —
each parsed ad hoc at its point of use.  :class:`Settings` consolidates
them into one frozen dataclass with a single, tested parser
(:meth:`Settings.from_env`), resolved *once* wherever a component is
constructed instead of re-read scalar by scalar.

Recognized variables:

=========================  ====================================================
``FLEXSFP_ENGINE``         engine tier default (``reference``/``batched``/
                           ``compiled``); unset defers to the legacy knobs
``FLEXSFP_FASTPATH``       flow-cache fast path default (``1/true/on/yes``)
``FLEXSFP_BATCH``          PPE batch size default (integer ≥ 1)
``FLEXSFP_METRICS_DIR``    benchmark metrics-artifact export directory
``FLEXSFP_BENCH_DIR``      BENCH history directory (``flexsfp.run/1``
                           artifacts + ``BENCH_*.json`` history files);
                           falls back to ``FLEXSFP_METRICS_DIR``
``FLEXSFP_WORKERS``        default worker count for sharded scenario runs
``FLEXSFP_MP_START``       multiprocessing start method (``fork``/``spawn``/
                           ``forkserver``); unset picks the best available
``FLEXSFP_SHARD_TIMEOUT``  per-shard deadline in seconds for supervised runs
                           (float > 0; unset/0 disables the deadline)
``FLEXSFP_MAX_RETRIES``    retries per failed shard beyond the first attempt
``FLEXSFP_RETRY_BACKOFF``  base of the exponential retry backoff, in seconds
=========================  ====================================================

Malformed values never raise at import or construction time: they fall
back to the documented default, exactly like the scattered parsers they
replace (a bad ``FLEXSFP_BATCH`` should degrade a CI knob, not brick the
simulator).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Mapping

from .engine import ENGINES

_TRUE_WORDS = frozenset({"1", "true", "on", "yes"})

ENV_ENGINE = "FLEXSFP_ENGINE"
ENV_FASTPATH = "FLEXSFP_FASTPATH"
ENV_BATCH = "FLEXSFP_BATCH"
ENV_METRICS_DIR = "FLEXSFP_METRICS_DIR"
ENV_BENCH_DIR = "FLEXSFP_BENCH_DIR"
ENV_WORKERS = "FLEXSFP_WORKERS"
ENV_MP_START = "FLEXSFP_MP_START"
ENV_SHARD_TIMEOUT = "FLEXSFP_SHARD_TIMEOUT"
ENV_MAX_RETRIES = "FLEXSFP_MAX_RETRIES"
ENV_RETRY_BACKOFF = "FLEXSFP_RETRY_BACKOFF"

_START_METHODS = ("fork", "spawn", "forkserver")


def parse_bool(raw: str | None, default: bool = False) -> bool:
    """Parse a boolean env value (``1/true/on/yes`` → True; unset → default)."""
    if raw is None or not raw.strip():
        return default
    return raw.strip().lower() in _TRUE_WORDS


def parse_int(
    raw: str | None, default: int, minimum: int | None = None
) -> int:
    """Parse an integer env value; malformed input yields ``default``."""
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        return default
    if minimum is not None and value < minimum:
        return minimum
    return value


def parse_float(
    raw: str | None, default: float, minimum: float | None = None
) -> float:
    """Parse a float env value; malformed input yields ``default``."""
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        return default
    if minimum is not None and value < minimum:
        return minimum
    return value


@dataclass(frozen=True)
class Settings:
    """All environment-tunable defaults, resolved once per construction site.

    ``engine`` names the default tier consumed by
    :func:`repro.engine.resolve_engine`; ``fastpath`` / ``batch_size``
    are the legacy simulation-speed knobs a
    :class:`~repro.core.module.FlexSFPModule` consults when its own
    constructor arguments are ``None``; ``metrics_dir`` is where
    benchmarks export registry dumps; ``workers`` / ``start_method``
    steer the :mod:`repro.parallel` sharded runner; ``shard_timeout_s``
    / ``max_retries`` / ``retry_backoff_s`` steer its supervisor
    (deadline per shard, bounded retry, exponential backoff base).
    """

    engine: str | None = None
    fastpath: bool = False
    batch_size: int = 1
    metrics_dir: Path | None = None
    bench_dir: Path | None = None
    workers: int | None = None
    start_method: str | None = None
    shard_timeout_s: float | None = None
    max_retries: int = 2
    retry_backoff_s: float = 0.05

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "Settings":
        """Resolve every knob from ``env`` (default: ``os.environ``)."""
        if env is None:
            env = os.environ
        metrics_dir = env.get(ENV_METRICS_DIR, "").strip()
        bench_dir = env.get(ENV_BENCH_DIR, "").strip()
        start = env.get(ENV_MP_START, "").strip().lower()
        engine = env.get(ENV_ENGINE, "").strip().lower()
        workers = parse_int(env.get(ENV_WORKERS), 0, minimum=0)
        shard_timeout = parse_float(env.get(ENV_SHARD_TIMEOUT), 0.0, minimum=0.0)
        return cls(
            engine=engine if engine in ENGINES else None,
            fastpath=parse_bool(env.get(ENV_FASTPATH)),
            batch_size=parse_int(env.get(ENV_BATCH), 1, minimum=1),
            metrics_dir=Path(metrics_dir) if metrics_dir else None,
            bench_dir=Path(bench_dir) if bench_dir else None,
            workers=workers if workers > 0 else None,
            start_method=start if start in _START_METHODS else None,
            shard_timeout_s=shard_timeout if shard_timeout > 0 else None,
            max_retries=parse_int(env.get(ENV_MAX_RETRIES), 2, minimum=0),
            retry_backoff_s=parse_float(
                env.get(ENV_RETRY_BACKOFF), 0.05, minimum=0.0
            ),
        )

    @property
    def bench_export_dir(self) -> Path | None:
        """Where bench artifacts/history land: bench_dir, then metrics_dir."""
        return self.bench_dir if self.bench_dir is not None else self.metrics_dir

    def with_overrides(self, **changes: object) -> "Settings":
        """A copy with the given fields replaced (keyword-checked)."""
        return replace(self, **changes)


def get_settings(env: Mapping[str, str] | None = None) -> Settings:
    """The current :class:`Settings` (re-parsed per call; parsing is cheap).

    Components resolve this once at construction — a module built after
    the environment changes sees the new values, a live module does not.
    """
    return Settings.from_env(env)
