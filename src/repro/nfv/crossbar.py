"""The runtime crosspoint-steering stage.

Hardware model: a crosspoint crossbar between the shell MACs and the
per-tenant pipeline partitions.  Each ingress data-plane frame is
matched against the deployment's steering rules in slot order and
forwarded to the first tenant that claims it; the mandatory wildcard
catch-all on the last slot makes steering a *total* function, so every
frame lands in exactly one slot (no replication, no loss at the
steering stage).  Per-tenant steered counters are the observable the
isolation tests and the ``tenant.<name>.steered`` metric subtree read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..sim.stats import Counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..packet import Packet

    from .deployment import TenantSpec


class Crossbar:
    """First-match-wins steering over an ordered tenant list."""

    def __init__(self, name: str, tenants: Sequence[TenantSpec]) -> None:
        self.name = name
        self._matches = [(index, spec.match) for index, spec in enumerate(tenants)]
        self.tenant_names = tuple(spec.name for spec in tenants)
        self.steered = [
            Counter(f"{name}.tenant.{spec.name}.steered") for spec in tenants
        ]

    def select(self, packet: Packet) -> int:
        """Pure classification: the slot index *packet* steers to."""
        for index, match in self._matches:
            if match.matches(packet):
                return index
        # Unreachable by construction: Deployment.validate() requires the
        # last slot to carry the wildcard match.
        raise AssertionError("crossbar steering fell through the catch-all")

    def steer(self, packet: Packet, size: int) -> int:
        """Classify and count one frame; returns the slot index."""
        index = self.select(packet)
        self.steered[index].count(size)
        return index

    def steer_bulk(self, template: Packet, size: int, count: int) -> int:
        """Classify one template frame standing for *count* identical
        frames (the struct-of-arrays burst lane) and count them all."""
        index = self.select(template)
        counter = self.steered[index]
        counter.packets += count
        counter.bytes += size * count
        return index

    def metric_values(self) -> dict[str, float]:
        return {
            f"{name}.frames": float(counter.packets)
            for name, counter in zip(self.tenant_names, self.steered)
        }
