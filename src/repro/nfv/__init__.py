"""Multi-tenant NFV deployments: many functions, one cable.

The paper's vision is a set of lightweight network functions living at
the optical boundary.  This package lifts the module API from "one app
per cable" to an ordered set of *tenants* sharing one FPGA:

* :mod:`repro.nfv.deployment` — the typed deployment API:
  :class:`SteeringMatch` (which ingress frames a tenant claims),
  :class:`TenantSpec` (name, app, match, resource share, engine tier)
  and :class:`Deployment` (ordered tenant slots + shell/device).
* :mod:`repro.nfv.crossbar` — the runtime crosspoint-steering stage
  that partitions every data-plane frame to exactly one tenant slot.
* :mod:`repro.nfv.pricing` — static feasibility: the crossbar plus
  per-slot partitions priced by the FPGA estimator, over-subscription
  and per-tenant line-rate surfaced as `flexsfp check` findings.
"""

from .crossbar import Crossbar
from .deployment import (
    NFV_SCRUB_DPORT,
    Deployment,
    SteeringMatch,
    TenantSpec,
    default_nfv_tenants,
)
from .pricing import DeploymentPrice, check_deployment, price_deployment

__all__ = [
    "NFV_SCRUB_DPORT",
    "Crossbar",
    "Deployment",
    "DeploymentPrice",
    "SteeringMatch",
    "TenantSpec",
    "check_deployment",
    "default_nfv_tenants",
    "price_deployment",
]
