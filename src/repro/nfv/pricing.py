"""Static feasibility for multi-tenant deployments.

Prices the crossbar plus every tenant's pipeline partition with the
existing FPGA estimator, then checks the deployment against the device
and the shell's line rate:

* ``nfv-oversubscription`` (error) — tenant resource shares sum past
  the whole app partition.
* ``nfv-partition-overflow`` (error) — a tenant's synthesized pipeline
  does not fit inside its share of the partition (device capacity minus
  shell base minus crossbar, scaled by the tenant's share).
* ``nfv-overflow`` (error) — the deployment as a whole (shell +
  crossbar + every tenant pipeline) overflows the device.
* ``nfv-line-rate`` (error) — a tenant's worst-case frame cannot
  sustain its share of the shell's offered rate at any standard clock,
  derived from the PR 8 effect/timing analysis
  (:func:`repro.analysis.effects.line_rate_verdict`).

``flexsfp check --nfv`` prints these findings; ``FlexSFPModule`` raises
:class:`~repro.errors.ConfigError` on any error finding, so an
over-subscribed deployment is rejected statically, before any packet
is processed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from ..analysis.findings import Finding, Severity, sort_findings
from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports nfv)
    from ..core.shells import ShellSpec
    from ..fpga.resources import FPGADevice, ResourceVector

    from .deployment import Deployment

#: Allow float fuzz when summing shares (0.5 + 0.25 + 0.25 must pass).
_SHARE_EPSILON = 1e-9


@dataclass(frozen=True)
class DeploymentPrice:
    """The priced deployment: shell base + crossbar + per-tenant pipelines."""

    shell_base: ResourceVector
    crossbar: ResourceVector
    per_tenant: dict[str, ResourceVector]
    total: ResourceVector
    fits: bool
    utilization: dict[str, float]

    def describe(self) -> dict[str, Any]:
        return {
            "crossbar": self.crossbar.as_dict(),
            "per_tenant": {
                name: vec.as_dict() for name, vec in self.per_tenant.items()
            },
            "total": self.total.as_dict(),
            "fits": self.fits,
            "utilization": self.utilization,
        }


def _resolve(
    deployment: Deployment,
    shell: ShellSpec | None,
    device: FPGADevice | None,
) -> tuple[ShellSpec, FPGADevice]:
    from ..core.shells import PROTOTYPE_SHELL
    from ..fpga.resources import MPF200T

    resolved_shell = deployment.shell or shell or PROTOTYPE_SHELL
    resolved_device = deployment.device or device or MPF200T
    return resolved_shell, resolved_device


def price_deployment(
    deployment: Deployment,
    shell: ShellSpec | None = None,
    device: FPGADevice | None = None,
) -> DeploymentPrice:
    """Price every component of *deployment* on *device*.

    Tenant pipelines are synthesized with ``strict=False`` so the price
    is always produced — feasibility is reported, not raised, because
    the caller here is a static check that wants to see the overflow.
    """
    from ..fpga import estimator
    from ..fpga.resources import ResourceVector
    from ..hls.compiler import compile_app

    resolved_shell, resolved_device = _resolve(deployment, shell, device)
    shell_base = resolved_shell.base_resources()
    xbar = (
        estimator.crossbar(
            len(deployment.tenants), resolved_shell.datapath_bits
        )
        if deployment.multi_tenant
        else ResourceVector()
    )
    per_tenant: dict[str, ResourceVector] = {}
    total = shell_base + xbar
    for spec in deployment.tenants:
        result = compile_app(
            spec.build_app(), resolved_shell, resolved_device, strict=False
        )
        per_tenant[spec.name] = result.report.app_resources
        total = total + result.report.app_resources
    return DeploymentPrice(
        shell_base=shell_base,
        crossbar=xbar,
        per_tenant=per_tenant,
        total=total,
        fits=resolved_device.fits(total),
        utilization=resolved_device.utilization(total),
    )


def check_deployment(
    deployment: Deployment,
    shell: ShellSpec | None = None,
    device: FPGADevice | None = None,
) -> list[Finding]:
    """Static feasibility findings for *deployment* (see module docs)."""
    from ..analysis.effects import analyze_app, line_rate_verdict

    resolved_shell, resolved_device = _resolve(deployment, shell, device)
    findings: list[Finding] = []

    share_total = deployment.share_total()
    if share_total > 1.0 + _SHARE_EPSILON:
        findings.append(
            Finding(
                rule="nfv-oversubscription",
                severity=Severity.ERROR,
                location="deployment:shares",
                message=(
                    f"tenant shares sum to {share_total:.3f} — the app "
                    "partition is over-subscribed"
                ),
                hint="reduce per-tenant shares so they sum to at most 1.0",
            )
        )

    price = price_deployment(deployment, resolved_shell, resolved_device)
    capacity = resolved_device.capacity.as_dict()
    overhead = (price.shell_base + price.crossbar).as_dict()
    partition = {
        kind: capacity[kind] - overhead.get(kind, 0) for kind in capacity
    }
    for spec in deployment.tenants:
        used = price.per_tenant[spec.name].as_dict()
        budget = {
            kind: int(avail * spec.share) for kind, avail in partition.items()
        }
        over = {
            kind: (used.get(kind, 0), budget[kind])
            for kind in budget
            if used.get(kind, 0) > budget[kind]
        }
        if over:
            detail = ", ".join(
                f"{kind} {need} > {have}"
                for kind, (need, have) in sorted(over.items())
            )
            findings.append(
                Finding(
                    rule="nfv-partition-overflow",
                    severity=Severity.ERROR,
                    location=f"tenant:{spec.name}",
                    message=(
                        f"tenant {spec.name!r} ({spec.app_name}) overflows "
                        f"its {spec.share:.0%} slot budget: {detail}"
                    ),
                    hint="raise the tenant's share or pick a smaller app",
                )
            )
    if not price.fits:
        findings.append(
            Finding(
                rule="nfv-overflow",
                severity=Severity.ERROR,
                location="deployment:total",
                message=(
                    f"deployment overflows {resolved_device.name}: "
                    + "; ".join(resolved_device.overflow_report(price.total))
                ),
                hint="drop a tenant or target a larger device",
            )
        )

    for spec in deployment.tenants:
        tenant_shell = replace(
            resolved_shell,
            line_rate_bps=resolved_shell.line_rate_bps * spec.share,
        )
        try:
            verdict = line_rate_verdict(
                analyze_app(spec.build_app()), tenant_shell
            )
        except ReproError:
            # No standard clock sustains even the empty pipeline at this
            # rate — the shell itself is infeasible; not a tenant finding.
            continue
        if not verdict.sustained:
            findings.append(
                Finding(
                    rule="nfv-line-rate",
                    severity=Severity.ERROR,
                    location=f"tenant:{spec.name}",
                    message=(
                        f"tenant {spec.name!r} ({spec.app_name}) cannot "
                        f"sustain its {spec.share:.0%} share of "
                        f"{resolved_shell.line_rate_bps / 1e9:.0f}G: "
                        f"worst-case frame needs {verdict.worst_frame} "
                        f"cycles ({verdict.conflict_cycles} from table-port "
                        f"conflicts) at "
                        f"{verdict.timing.clock_hz / 1e6:.2f} MHz"
                    ),
                    hint="lower the tenant's share or simplify its pipeline",
                )
            )
    return sort_findings(findings)
