"""The typed deployment API: tenants, steering matches, deployments.

A :class:`Deployment` is the unit of provisioning for a FlexSFP module:
an ordered list of :class:`TenantSpec` slots, each naming the network
function it runs, the ingress frames it claims (:class:`SteeringMatch`),
the fraction of the app partition it may occupy, and optionally its own
engine tier.  ``FlexSFPModule(sim, name, deployment)`` is the primary
constructor; the legacy single-app form is a deprecation shim over
:meth:`Deployment.solo`.

Steering is first-match-wins in slot order, and the *last* tenant must
carry the wildcard match — that invariant makes the crossbar a total
function from frames to tenants, so every data-plane frame lands in
exactly one slot (the partition property the isolation tests assert).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from .._util import ip_to_int
from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports nfv)
    from ..core.ppe import PPEApplication
    from ..core.shells import ShellSpec
    from ..fpga.resources import FPGADevice
    from ..packet import Packet

#: Tenant names become metric-name segments (``<module>.tenant.<name>.*``),
#: so they must be single dotted-name segments.
_TENANT_NAME_RE = re.compile(r"^[A-Za-z0-9_-]+$")

#: UDP destination port the canonical scrub tenant claims in the
#: ``nfv-chain`` / ``tenant-churn`` scenarios.
NFV_SCRUB_DPORT = 9099


@dataclass(frozen=True)
class SteeringMatch:
    """Which ingress frames a tenant claims at the crossbar.

    All fields ``None`` is the wildcard match (claims everything) — the
    catch-all that the last tenant of every deployment must carry.  A
    non-wildcard match claims IPv4 frames whose UDP destination port
    and/or destination prefix agree; non-IP frames only ever match the
    wildcard, so they flow to the catch-all tenant.
    """

    udp_dport: int | None = None
    dst_ip: str | None = None
    prefix_len: int = 32

    def __post_init__(self) -> None:
        if self.udp_dport is not None and not 0 <= self.udp_dport <= 0xFFFF:
            raise ConfigError(f"udp_dport {self.udp_dport} outside 0..65535")
        if not 0 <= self.prefix_len <= 32:
            raise ConfigError(f"prefix_len {self.prefix_len} outside 0..32")
        if self.dst_ip is not None:
            # Validate eagerly so a typo fails at spec time, not steer time.
            ip_to_int(self.dst_ip)

    @property
    def is_wildcard(self) -> bool:
        return self.udp_dport is None and self.dst_ip is None

    def matches(self, packet: Packet) -> bool:
        """Does this rule claim *packet*?  Wildcard claims everything."""
        if self.is_wildcard:
            return True
        ip = packet.ipv4
        if ip is None:
            return False
        if self.udp_dport is not None:
            udp = packet.udp
            if udp is None or udp.dport != self.udp_dport:
                return False
        if self.dst_ip is not None:
            shift = 32 - self.prefix_len
            if (ip.dst >> shift) != (ip_to_int(self.dst_ip) >> shift):
                return False
        return True

    def describe(self) -> dict[str, Any]:
        """Stable JSON-friendly form recorded in artifact knob blocks."""
        out: dict[str, Any] = {}
        if self.udp_dport is not None:
            out["udp_dport"] = self.udp_dport
        if self.dst_ip is not None:
            out["dst_ip"] = self.dst_ip
            out["prefix_len"] = self.prefix_len
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any] | None) -> SteeringMatch:
        payload = dict(payload or {})
        return cls(
            udp_dport=payload.get("udp_dport"),
            dst_ip=payload.get("dst_ip"),
            prefix_len=int(payload.get("prefix_len", 32)),
        )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant slot: a network function plus its steering and budget.

    ``app`` is either a registry name (``"sanitizer"``) instantiated at
    deploy time with ``params``, or an already-configured
    :class:`~repro.core.ppe.PPEApplication` instance (the form the
    ``Deployment.solo`` migration shim uses for e.g. a ``StaticNat``
    with mappings loaded).
    """

    name: str
    app: str | PPEApplication
    match: SteeringMatch = field(default_factory=SteeringMatch)
    share: float = 1.0
    engine: str | None = None
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not _TENANT_NAME_RE.match(self.name):
            raise ConfigError(
                f"tenant name {self.name!r} must match [A-Za-z0-9_-]+ "
                "(it becomes a metric-name segment)"
            )
        if not 0.0 < self.share <= 1.0:
            raise ConfigError(
                f"tenant {self.name!r} share {self.share} outside (0, 1]"
            )
        if isinstance(self.params, dict):
            # Accept a dict for ergonomics; store the hashable form.
            object.__setattr__(self, "params", tuple(sorted(self.params.items())))

    @property
    def app_name(self) -> str:
        return self.app if isinstance(self.app, str) else self.app.name

    def build_app(self) -> PPEApplication:
        """Materialise the tenant's application instance."""
        if not isinstance(self.app, str):
            return self.app
        from ..apps import create_app

        return create_app(self.app, dict(self.params))

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "app": self.app_name,
            "match": self.match.describe(),
            "share": self.share,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> TenantSpec:
        params = payload.get("params") or {}
        if isinstance(params, Mapping):
            params = tuple(sorted(params.items()))
        return cls(
            name=str(payload["name"]),
            app=str(payload["app"]),
            match=SteeringMatch.from_dict(payload.get("match")),
            share=float(payload.get("share", 1.0)),
            engine=payload.get("engine"),
            params=tuple(params),
        )


@dataclass(frozen=True)
class Deployment:
    """An ordered set of tenant slots sharing one module.

    ``shell`` / ``device`` override the module defaults when set, so a
    deployment is a self-contained provisioning document.  Validation
    enforces structure only (names, matches, per-tenant shares); whether
    the *sum* of shares and the priced partitions actually fit the FPGA
    is the static feasibility check (:func:`repro.nfv.check_deployment`),
    surfaced by ``flexsfp check`` and enforced at module construction.
    """

    tenants: tuple[TenantSpec, ...]
    shell: ShellSpec | None = None
    device: FPGADevice | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        self.validate()

    def validate(self) -> None:
        if not self.tenants:
            raise ConfigError("a deployment needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in deployment: {names}")
        if not self.tenants[-1].match.is_wildcard:
            raise ConfigError(
                "the last tenant must carry the wildcard steering match "
                "(the catch-all that makes crossbar steering total)"
            )

    @classmethod
    def solo(
        cls,
        app: str | PPEApplication,
        *,
        name: str = "default",
        shell: ShellSpec | None = None,
        device: FPGADevice | None = None,
        engine: str | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> Deployment:
        """A one-tenant deployment — the migration target for ``app=``."""
        return cls(
            tenants=(
                TenantSpec(
                    name=name,
                    app=app,
                    share=1.0,
                    engine=engine,
                    params=tuple(sorted((params or {}).items())),
                ),
            ),
            shell=shell,
            device=device,
        )

    @property
    def multi_tenant(self) -> bool:
        return len(self.tenants) > 1

    def tenant(self, name: str) -> TenantSpec:
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise ConfigError(
            f"no tenant {name!r} in deployment "
            f"(tenants: {[t.name for t in self.tenants]})"
        )

    def share_total(self) -> float:
        return sum(tenant.share for tenant in self.tenants)

    def describe(self) -> dict[str, Any]:
        return {"tenants": [tenant.describe() for tenant in self.tenants]}

    @classmethod
    def from_dicts(
        cls,
        tenants: Any,
        *,
        shell: ShellSpec | None = None,
        device: FPGADevice | None = None,
    ) -> Deployment:
        """Build a deployment from serialized tenant payloads."""
        return cls(
            tenants=tuple(TenantSpec.from_dict(dict(t)) for t in tenants),
            shell=shell,
            device=device,
        )


def default_nfv_tenants() -> tuple[dict[str, Any], ...]:
    """The canonical DDoS-scrub + INT-telemetry pair (serialized form).

    The ``nfv-chain`` and ``tenant-churn`` scenario kinds resolve their
    tenant set from this when the spec does not name one: a packet
    sanitizer claiming the scrub service port, and the in-band telemetry
    source as the wildcard catch-all.
    """
    return (
        {
            "name": "scrub",
            "app": "sanitizer",
            "match": {"udp_dport": NFV_SCRUB_DPORT},
            "share": 0.5,
        },
        {"name": "telemetry", "app": "int", "match": {}, "share": 0.5},
    )
