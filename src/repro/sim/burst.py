"""Struct-of-arrays burst arithmetic for the compiled engine tier.

The compiled data plane moves whole same-size bursts through the simulator
as one template packet plus numpy arrays of per-frame times.  The helpers
here vectorise the serialization/service reservation chain while staying
bit-identical to the sequential per-frame float arithmetic: within a busy
segment the running finish is ``np.add.accumulate`` — a sequential left
fold, so each element is exactly ``previous + service`` in scalar float64 —
and segment boundaries re-seed from the arrival time exactly where the
scalar ``start = max(arrival, free_at)`` would.
"""

from __future__ import annotations

import numpy as np

# A burst whose arrivals out-pace the service rate is a single segment; one
# with many idle gaps degenerates into per-frame seeding, where the Python
# loop is cheaper than repeated array scans.  Callers fall back to the
# exact per-frame loop when the chain exceeds this many segments.
MAX_CHAIN_SEGMENTS = 8


def chain_reservations(
    times: np.ndarray,
    service: float,
    free_at: float,
    max_segments: int = MAX_CHAIN_SEGMENTS,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Vectorised ``start = max(arrival, free_at); finish = start + service``.

    ``times`` is a non-decreasing float64 array of arrival seconds and
    ``service`` the per-frame service time (uniform — the burst contract).
    Returns ``(starts, finishes)`` arrays bit-identical to the sequential
    reservation loop, or None when the burst breaks into more than
    ``max_segments`` busy segments (caller runs the per-frame loop).
    """
    n = len(times)
    starts = np.empty(n)
    finishes = np.empty(n)
    index = 0
    seed = free_at
    segments = 0
    while index < n:
        segments += 1
        if segments > max_segments:
            return None
        arrival = times[index]
        base = arrival if arrival > seed else seed
        remaining = n - index
        chain = np.empty(remaining + 1)
        chain[0] = base
        chain[1:] = service
        chain = np.add.accumulate(chain)
        # chain[k] is frame index+k's start while the server stays busy;
        # the segment ends at the first frame whose arrival beats the
        # running finish (strict >, matching the scalar max()).
        gaps = times[index + 1 : n] > chain[1:remaining]
        take = remaining
        if gaps.any():
            take = int(np.argmax(gaps)) + 1
        starts[index] = base
        if take > 1:
            starts[index + 1 : index + take] = chain[1:take]
        finishes[index : index + take] = chain[1 : take + 1]
        seed = chain[take]
        index += take
    return starts, finishes


def bounded_admissions(caps: np.ndarray) -> np.ndarray:
    """Cumulative admissions of the tail-drop scan, vectorised.

    Models ``A_i = A_{i-1} + (A_{i-1} <= caps_i)`` with ``A_{-1} = 0`` —
    frame ``i`` is admitted iff the number already admitted is within its
    queue headroom ``caps_i`` (in frames).  Requires ``caps``
    non-decreasing, which holds whenever headroom only grows as the
    timeline drains.  Closed form: an admission streak is bounded both by
    ``i + 1`` (can't admit more frames than arrived) and by the tightest
    earlier cap plus the arrivals since it.
    """
    caps = np.asarray(caps, dtype=np.int64)
    idx = np.arange(len(caps))
    best = np.minimum.accumulate(np.maximum(caps + 1, 0) - idx)
    return np.minimum(idx + 1, best + idx)
