"""Discrete-event network simulation substrate.

Provides the event engine, Ethernet MAC arithmetic, port/link transport,
measurement primitives, and pcap persistence used by every higher layer.
"""

from .engine import EventHandle, PeriodicTask, Simulator
from .link import DEFAULT_PROPAGATION_S, Port, connect
from .mac import (
    FCS_BYTES,
    IFG_BYTES,
    JUMBO_FRAME_BYTES,
    MAX_FRAME_BYTES,
    MIN_FRAME_BYTES,
    PER_FRAME_OVERHEAD,
    PREAMBLE_BYTES,
    frame_wire_bytes,
    goodput_fraction,
    line_rate_packets,
    max_frame_rate,
    serialization_time,
)
from .pcap import PcapWriter, read_pcap
from .stats import Counter, Histogram, RateMeter, RunningStats

__all__ = [
    "Counter",
    "DEFAULT_PROPAGATION_S",
    "EventHandle",
    "FCS_BYTES",
    "Histogram",
    "IFG_BYTES",
    "JUMBO_FRAME_BYTES",
    "MAX_FRAME_BYTES",
    "MIN_FRAME_BYTES",
    "PER_FRAME_OVERHEAD",
    "PREAMBLE_BYTES",
    "PcapWriter",
    "PeriodicTask",
    "Port",
    "RateMeter",
    "RunningStats",
    "Simulator",
    "connect",
    "frame_wire_bytes",
    "goodput_fraction",
    "line_rate_packets",
    "max_frame_rate",
    "read_pcap",
    "serialization_time",
]
