"""Ports and links: the packet-transport fabric of the simulator.

A :class:`Port` is one direction-agnostic attachment point owned by a device
(host NIC, switch port, FlexSFP interface).  Connecting two ports creates a
full-duplex link; each direction models store-and-forward transmission with
a bounded output FIFO (tail drop), per-frame serialization at the port rate,
and constant propagation delay.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..errors import SimulationError
from ..packet import Packet
from .engine import Simulator
from .mac import serialization_time
from .stats import Counter

PacketHandler = Callable[["Port", Packet], None]

# Default propagation: 10 m of fiber at ~5 ns/m.
DEFAULT_PROPAGATION_S = 50e-9
DEFAULT_QUEUE_BYTES = 512 * 1024


class Port:
    """A full-duplex network port with an egress FIFO.

    ``send`` enqueues a frame for transmission; the port serializes frames
    back-to-back at ``rate_bps`` and delivers them to the connected peer
    after the link's propagation delay.  Received frames are handed to the
    attached handler (set by the owning device via :meth:`attach`).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float = 10e9,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.queue_bytes = queue_bytes
        self._peer: Port | None = None
        self._propagation_s = DEFAULT_PROPAGATION_S
        self._handler: PacketHandler | None = None
        self._tx_fifo: deque[Packet] = deque()
        self._tx_fifo_bytes = 0
        self._tx_busy = False
        self.tx = Counter(f"{name}.tx")
        self.rx = Counter(f"{name}.rx")
        self.drops = Counter(f"{name}.drops")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, handler: PacketHandler) -> None:
        """Register the owner's receive callback."""
        self._handler = handler

    def connect(self, peer: "Port", propagation_s: float = DEFAULT_PROPAGATION_S) -> None:
        """Create a full-duplex link between this port and ``peer``."""
        if self._peer is not None or peer._peer is not None:
            raise SimulationError(
                f"port already connected: {self.name} or {peer.name}"
            )
        self._peer = peer
        peer._peer = self
        self._propagation_s = propagation_s
        peer._propagation_s = propagation_s

    def disconnect(self) -> None:
        """Tear down the link (queued frames are dropped)."""
        if self._peer is not None:
            self._peer._peer = None
            self._peer = None
        self._tx_fifo.clear()
        self._tx_fifo_bytes = 0

    @property
    def connected(self) -> bool:
        return self._peer is not None

    @property
    def peer(self) -> "Port | None":
        return self._peer

    @property
    def queue_depth_bytes(self) -> int:
        """Bytes currently waiting in the egress FIFO."""
        return self._tx_fifo_bytes

    @property
    def queue_depth_packets(self) -> int:
        return len(self._tx_fifo)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; False on tail drop."""
        if self._peer is None:
            self.drops.count(packet.wire_len)
            return False
        size = packet.wire_len
        if self._tx_fifo_bytes + size > self.queue_bytes:
            self.drops.count(size)
            return False
        self._tx_fifo.append(packet)
        self._tx_fifo_bytes += size
        if not self._tx_busy:
            self._start_next_tx()
        return True

    def _start_next_tx(self) -> None:
        if not self._tx_fifo:
            self._tx_busy = False
            return
        self._tx_busy = True
        packet = self._tx_fifo.popleft()
        self._tx_fifo_bytes -= packet.wire_len
        tx_time = serialization_time(packet.wire_len, self.rate_bps)
        self.sim.schedule(tx_time, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        self.tx.count(packet.wire_len)
        peer = self._peer
        if peer is not None:
            self.sim.schedule(self._propagation_s, peer._deliver, packet)
        self._start_next_tx()

    def _deliver(self, packet: Packet) -> None:
        self.rx.count(packet.wire_len)
        if self._handler is not None:
            self._handler(self, packet)


def connect(a: Port, b: Port, propagation_s: float = DEFAULT_PROPAGATION_S) -> None:
    """Module-level convenience mirroring :meth:`Port.connect`."""
    a.connect(b, propagation_s)
