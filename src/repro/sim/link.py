"""Ports and links: the packet-transport fabric of the simulator.

A :class:`Port` is one direction-agnostic attachment point owned by a device
(host NIC, switch port, FlexSFP interface).  Connecting two ports creates a
full-duplex link; each direction models store-and-forward transmission with
a bounded output FIFO (tail drop), per-frame serialization at the port rate,
and constant propagation delay.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..errors import SimulationError
from ..packet import Packet
from .engine import ServiceTimeline, Simulator
from .mac import serialization_time
from .stats import Counter

PacketHandler = Callable[["Port", Packet], None]
# Batched receive: one call per delivery flush with [(packet, size, when)].
BatchHandler = Callable[["Port", "list[tuple[Packet, int, float]]"], None]

# Default propagation: 10 m of fiber at ~5 ns/m.
DEFAULT_PROPAGATION_S = 50e-9
DEFAULT_QUEUE_BYTES = 512 * 1024


class Port:
    """A full-duplex network port with an egress FIFO.

    ``send`` enqueues a frame for transmission; the port serializes frames
    back-to-back at ``rate_bps`` and delivers them to the connected peer
    after the link's propagation delay.  Received frames are handed to the
    attached handler (set by the owning device via :meth:`attach`).

    With ``coalesce=True`` (the batched fast path) the per-frame
    tx-done/deliver event pair collapses into a single deliver event:
    serialization start/finish times come from an analytic
    :class:`~repro.sim.engine.ServiceTimeline` whose arithmetic matches the
    event-per-frame schedule bit for bit, so delivery timestamps and
    tail-drop decisions are unchanged.  The one behavioural approximation:
    frames already reserved keep their delivery even if the link is
    disconnected before their serialization would have started.

    A receiver may additionally opt into *batched delivery* with
    ``batch_rx=True``: a coalescing sender then accumulates reservations
    and hands them over in a single flush event scheduled at the first
    pending frame's delivery time, stamping each frame's exact (virtual)
    delivery timestamp into ``packet.meta["link_deliver_s"]``.  Later
    frames of the flush arrive *early* in event time but carry their true
    wire arrival; a batch-aware handler (the FlexSFP module, a meter)
    reads the stamp and reproduces the event-per-frame arithmetic bit for
    bit.  Only attach batch_rx to ports whose handler understands the
    stamp.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float = 10e9,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        coalesce: bool = False,
        batch_rx: bool = False,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.queue_bytes = queue_bytes
        self.coalesce = coalesce
        self.batch_rx = batch_rx
        self._pending_rx: list[tuple[Packet, int, float]] = []
        # Optional bracketing callbacks a batch_rx owner may install: a
        # sender's flush calls begin before and end after handing over the
        # whole pending run, letting the receiver defer per-frame work
        # (e.g. PPE group-event arming) to one commit per flush.
        self.rx_flush_begin: Callable[[], None] | None = None
        self.rx_flush_end: Callable[[], None] | None = None
        self._batch_handler: BatchHandler | None = None
        self._peer: Port | None = None
        self._propagation_s = DEFAULT_PROPAGATION_S
        self._handler: PacketHandler | None = None
        self._tx_fifo: deque[tuple[Packet, int]] = deque()
        self._tx_fifo_bytes = 0
        self._tx_busy = False
        self._timeline = ServiceTimeline()
        self.tx = Counter(f"{name}.tx")
        self.rx = Counter(f"{name}.rx")
        self.drops = Counter(f"{name}.drops")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, handler: PacketHandler) -> None:
        """Register the owner's receive callback."""
        self._handler = handler

    def attach_batch(self, handler: BatchHandler) -> None:
        """Register a batched receive callback (``batch_rx`` ports only).

        When set, a sender's flush hands the whole pending run over in one
        call — ``handler(port, [(packet, size, when), ...])`` — instead of
        stamping ``link_deliver_s`` and invoking the per-frame handler for
        each frame.  Frames delivered individually (from non-coalescing
        senders) still go through the per-frame handler, so owners should
        attach both.
        """
        self._batch_handler = handler

    def connect(self, peer: "Port", propagation_s: float = DEFAULT_PROPAGATION_S) -> None:
        """Create a full-duplex link between this port and ``peer``."""
        if self._peer is not None or peer._peer is not None:
            raise SimulationError(
                f"port already connected: {self.name} or {peer.name}"
            )
        self._peer = peer
        peer._peer = self
        self._propagation_s = propagation_s
        peer._propagation_s = propagation_s

    def disconnect(self) -> None:
        """Tear down the link (queued frames are dropped)."""
        if self._peer is not None:
            self._peer._peer = None
            self._peer = None
        self._tx_fifo.clear()
        self._tx_fifo_bytes = 0
        self._timeline.reset()

    @property
    def connected(self) -> bool:
        return self._peer is not None

    @property
    def peer(self) -> "Port | None":
        return self._peer

    @property
    def queue_depth_bytes(self) -> int:
        """Bytes currently waiting in the egress FIFO."""
        if self.coalesce:
            self._timeline.drain(self.sim.now)
            return self._timeline.pending_bytes
        return self._tx_fifo_bytes

    @property
    def queue_depth_packets(self) -> int:
        return len(self._tx_fifo)

    def metric_values(self) -> dict[str, int | float]:
        """Flat :class:`~repro.obs.registry.MetricSource` view."""
        return {
            "tx.packets": self.tx.packets,
            "tx.bytes": self.tx.bytes,
            "rx.packets": self.rx.packets,
            "rx.bytes": self.rx.bytes,
            "drops.packets": self.drops.packets,
            "drops.bytes": self.drops.bytes,
            "queue.bytes": self.queue_depth_bytes,
            "rate_bps": self.rate_bps,
        }

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; False on tail drop."""
        if self._peer is None:
            self.drops.count(packet.wire_len)
            return False
        if self.coalesce:
            return self._reserve_tx(packet, self.sim.now)
        size = packet.wire_len
        if self._tx_fifo_bytes + size > self.queue_bytes:
            self.drops.count(size)
            return False
        self._tx_fifo.append((packet, size))
        self._tx_fifo_bytes += size
        if not self._tx_busy:
            self._start_next_tx()
        return True

    def send_delayed(self, packet: Packet, delay_s: float) -> None:
        """Send ``packet`` after ``delay_s`` (e.g. a transceiver crossing).

        Coalescing ports fold the delay into the serialization reservation
        — no intermediate event; others schedule a plain deferred send.
        """
        if self.coalesce and self._peer is not None:
            self._reserve_tx(packet, self.sim.now + delay_s)
        else:
            self.sim.schedule(delay_s, self.send, packet)

    def send_at(self, packet: Packet, at_s: float, size: int | None = None) -> bool:
        """Send ``packet`` at absolute (virtual) time ``at_s``.

        On a coalescing port the reservation is made immediately with the
        given arrival time — the foundation of burst traffic emission and
        of batched PPE egress.  ``at_s`` may lag ``now`` by up to one
        batch window (a batch tail replaying per-frame deliver times);
        serialization arithmetic still uses the virtual arrival, only the
        deliver *event* is clamped to now.  Non-coalescing ports fall
        back to a scheduled plain send (and cannot report the eventual
        tail-drop outcome, hence True).
        """
        if self.coalesce and self._peer is not None:
            return self._reserve_tx(packet, at_s, size)
        if at_s <= self.sim.now:
            return self.send(packet)
        self.sim.schedule(at_s - self.sim.now, self.send, packet)
        return True

    def _reserve_tx(
        self, packet: Packet, arrival: float, size: int | None = None
    ) -> bool:
        """Coalesced transmit: one deliver event per frame.

        The occupancy check drains the timeline to the frame's *arrival*
        (which may differ from now for delayed/burst/virtual sends): that
        is the state the event-per-frame execution would see when its
        deferred ``send`` ran at the arrival time.  Callers must reserve
        in non-decreasing arrival order, which every producer (serialized
        sources, per-direction module egress) naturally does.
        """
        if size is None:
            size = packet.wire_len
        # Inlined ServiceTimeline.drain/reserve and serialization_time
        # (hot path): framing arithmetic is pure int and the float
        # operations run in the helper's exact order, so timestamps and
        # occupancy are bit-identical to the out-of-line versions.
        timeline = self._timeline
        reservations = timeline._pending
        pending_bytes = timeline.pending_bytes
        while reservations and reservations[0][0] <= arrival:
            pending_bytes -= reservations.popleft()[1]
        if pending_bytes + size > self.queue_bytes:
            timeline.pending_bytes = pending_bytes
            self.drops.count(size)
            return False
        framed = size + 4
        if framed < 64:
            framed = 64
        service = (framed + 20) * 8 / self.rate_bps
        free_at = timeline.free_at
        start = arrival if arrival > free_at else free_at
        finish = start + service
        timeline.free_at = finish
        reservations.append((start, size))
        timeline.pending_bytes = pending_bytes + size
        when = finish + self._propagation_s
        peer = self._peer
        if peer.batch_rx:
            # Batch-aware receiver: fold this frame into one flush event
            # per producing burst.  Batch handlers get the delivery time
            # as data; per-frame handlers read the meta stamp.
            if peer._batch_handler is None:
                packet.meta["link_deliver_s"] = when
            pending = self._pending_rx
            pending.append((packet, size, when))
            if len(pending) == 1:
                self.sim.schedule_at(
                    when if when > self.sim.now else self.sim.now,
                    self._flush_rx,
                )
            return True
        if when < self.sim.now:
            # A virtual arrival far enough in the past that the frame
            # "already" left: deliver immediately (bounded by the batch
            # window; the reservation arithmetic stays exact regardless).
            when = self.sim.now
        self.sim.schedule_at(when, self._coalesced_deliver, packet)
        return True

    def _coalesced_deliver(self, packet: Packet) -> None:
        size = packet.wire_len
        self.tx.count(size)
        peer = self._peer
        if peer is not None:
            peer._deliver(packet, size)

    def _flush_rx(self) -> None:
        pending = self._pending_rx
        self._pending_rx = []
        if pending[-1][2] > self.sim.horizon:
            # Frames due beyond the current run window stay pending (the
            # event-per-frame execution would not have delivered them);
            # a later run resumes them from the re-armed flush.
            horizon = self.sim.horizon
            split = next(
                i for i, entry in enumerate(pending) if entry[2] > horizon
            )
            self._pending_rx = pending[split:]
            self.sim.schedule_at(self._pending_rx[0][2], self._flush_rx)
            pending = pending[:split]
        peer = self._peer
        tx = self.tx
        if peer is None:
            # Link torn down after reservation: same silent in-flight loss
            # as the per-frame coalesced deliver.
            for _packet, size, _when in pending:
                tx.count(size)
            return
        begin = peer.rx_flush_begin
        if begin is not None:
            begin()
        batch_handler = peer._batch_handler
        total_bytes = 0
        if batch_handler is not None:
            for entry in pending:
                total_bytes += entry[1]
            batch_handler(peer, pending)
        else:
            handler = peer._handler
            if handler is None:
                for _packet, size, _when in pending:
                    total_bytes += size
            else:
                for packet, size, _when in pending:
                    total_bytes += size
                    handler(peer, packet)
        frames = len(pending)
        tx.packets += frames
        tx.bytes += total_bytes
        rx = peer.rx
        rx.packets += frames
        rx.bytes += total_bytes
        end = peer.rx_flush_end
        if end is not None:
            end()

    def _start_next_tx(self) -> None:
        if not self._tx_fifo:
            self._tx_busy = False
            return
        self._tx_busy = True
        packet, size = self._tx_fifo.popleft()
        self._tx_fifo_bytes -= size
        tx_time = serialization_time(size, self.rate_bps)
        self.sim.schedule(tx_time, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        self.tx.count(packet.wire_len)
        peer = self._peer
        if peer is not None:
            self.sim.schedule(self._propagation_s, peer._deliver, packet)
        self._start_next_tx()

    def _deliver(self, packet: Packet, size: int | None = None) -> None:
        self.rx.count(packet.wire_len if size is None else size)
        if self._handler is not None:
            self._handler(self, packet)


def connect(a: Port, b: Port, propagation_s: float = DEFAULT_PROPAGATION_S) -> None:
    """Module-level convenience mirroring :meth:`Port.connect`."""
    a.connect(b, propagation_s)
