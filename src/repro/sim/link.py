"""Ports and links: the packet-transport fabric of the simulator.

A :class:`Port` is one direction-agnostic attachment point owned by a device
(host NIC, switch port, FlexSFP interface).  Connecting two ports creates a
full-duplex link; each direction models store-and-forward transmission with
a bounded output FIFO (tail drop), per-frame serialization at the port rate,
and constant propagation delay.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from ..errors import SimulationError
from ..packet import Packet
from .burst import chain_reservations
from .engine import ServiceTimeline, Simulator
from .mac import serialization_time
from .stats import Counter

PacketHandler = Callable[["Port", Packet], None]
# Batched receive: one call per delivery flush with [(packet, size, when)].
BatchHandler = Callable[["Port", "list[tuple[Packet, int, float]]"], None]
# Compiled-burst receive: one call per burst with the shared template, the
# wire size, and the struct-of-arrays vector of delivery times.
BurstHandler = Callable[["Port", Packet, int, "np.ndarray"], None]

# Default propagation: 10 m of fiber at ~5 ns/m.
DEFAULT_PROPAGATION_S = 50e-9
DEFAULT_QUEUE_BYTES = 512 * 1024


class Port:
    """A full-duplex network port with an egress FIFO.

    ``send`` enqueues a frame for transmission; the port serializes frames
    back-to-back at ``rate_bps`` and delivers them to the connected peer
    after the link's propagation delay.  Received frames are handed to the
    attached handler (set by the owning device via :meth:`attach`).

    With ``coalesce=True`` (the batched fast path) the per-frame
    tx-done/deliver event pair collapses into a single deliver event:
    serialization start/finish times come from an analytic
    :class:`~repro.sim.engine.ServiceTimeline` whose arithmetic matches the
    event-per-frame schedule bit for bit, so delivery timestamps and
    tail-drop decisions are unchanged.  The one behavioural approximation:
    frames already reserved keep their delivery even if the link is
    disconnected before their serialization would have started.

    A receiver may additionally opt into *batched delivery* with
    ``batch_rx=True``: a coalescing sender then accumulates reservations
    and hands them over in a single flush event scheduled at the first
    pending frame's delivery time, stamping each frame's exact (virtual)
    delivery timestamp into ``packet.meta["link_deliver_s"]``.  Later
    frames of the flush arrive *early* in event time but carry their true
    wire arrival; a batch-aware handler (the FlexSFP module, a meter)
    reads the stamp and reproduces the event-per-frame arithmetic bit for
    bit.  Only attach batch_rx to ports whose handler understands the
    stamp.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float = 10e9,
        queue_bytes: int = DEFAULT_QUEUE_BYTES,
        coalesce: bool = False,
        batch_rx: bool = False,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.queue_bytes = queue_bytes
        self.coalesce = coalesce
        self.batch_rx = batch_rx
        self._pending_rx: list[tuple[Packet, int, float]] = []
        # Optional bracketing callbacks a batch_rx owner may install: a
        # sender's flush calls begin before and end after handing over the
        # whole pending run, letting the receiver defer per-frame work
        # (e.g. PPE group-event arming) to one commit per flush.
        self.rx_flush_begin: Callable[[], None] | None = None
        self.rx_flush_end: Callable[[], None] | None = None
        self._batch_handler: BatchHandler | None = None
        self._burst_handler: BurstHandler | None = None
        # Compiled bursts pending delivery: (template, size, whens).  Never
        # non-empty at the same time as _pending_rx — mixing materializes
        # the bursts into per-frame entries first (see send_burst).
        self._pending_bursts: list[tuple[Packet, int, np.ndarray]] = []
        self._burst_flush_event = None
        self._peer: Port | None = None
        self._propagation_s = DEFAULT_PROPAGATION_S
        self._handler: PacketHandler | None = None
        self._tx_fifo: deque[tuple[Packet, int]] = deque()
        self._tx_fifo_bytes = 0
        self._tx_busy = False
        self._timeline = ServiceTimeline()
        self.tx = Counter(f"{name}.tx")
        self.rx = Counter(f"{name}.rx")
        self.drops = Counter(f"{name}.drops")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, handler: PacketHandler) -> None:
        """Register the owner's receive callback."""
        self._handler = handler

    def attach_batch(self, handler: BatchHandler) -> None:
        """Register a batched receive callback (``batch_rx`` ports only).

        When set, a sender's flush hands the whole pending run over in one
        call — ``handler(port, [(packet, size, when), ...])`` — instead of
        stamping ``link_deliver_s`` and invoking the per-frame handler for
        each frame.  Frames delivered individually (from non-coalescing
        senders) still go through the per-frame handler, so owners should
        attach both.
        """
        self._batch_handler = handler

    def attach_burst(self, handler: BurstHandler) -> None:
        """Register a compiled-burst receive callback.

        When set, a sender's burst flush hands each pending burst over in
        one call — ``handler(port, template, size, whens)`` — where
        ``whens`` is the float64 vector of exact (virtual) delivery times.
        The template is shared, not copied: the receiver must not mutate
        it.  Frames sent individually still take the batch/per-frame
        paths, so owners should attach all applicable handlers.
        """
        self._burst_handler = handler

    def connect(self, peer: "Port", propagation_s: float = DEFAULT_PROPAGATION_S) -> None:
        """Create a full-duplex link between this port and ``peer``."""
        if self._peer is not None or peer._peer is not None:
            raise SimulationError(
                f"port already connected: {self.name} or {peer.name}"
            )
        self._peer = peer
        peer._peer = self
        self._propagation_s = propagation_s
        peer._propagation_s = propagation_s

    def disconnect(self) -> None:
        """Tear down the link (queued frames are dropped)."""
        if self._peer is not None:
            self._peer._peer = None
            self._peer = None
        self._tx_fifo.clear()
        self._tx_fifo_bytes = 0
        self._timeline.reset()

    @property
    def connected(self) -> bool:
        return self._peer is not None

    @property
    def peer(self) -> "Port | None":
        return self._peer

    @property
    def queue_depth_bytes(self) -> int:
        """Bytes currently waiting in the egress FIFO."""
        if self.coalesce:
            self._timeline.drain(self.sim.now)
            return self._timeline.pending_bytes
        return self._tx_fifo_bytes

    @property
    def queue_depth_packets(self) -> int:
        return len(self._tx_fifo)

    def metric_values(self) -> dict[str, int | float]:
        """Flat :class:`~repro.obs.registry.MetricSource` view."""
        return {
            "tx.packets": self.tx.packets,
            "tx.bytes": self.tx.bytes,
            "rx.packets": self.rx.packets,
            "rx.bytes": self.rx.bytes,
            "drops.packets": self.drops.packets,
            "drops.bytes": self.drops.bytes,
            "queue.bytes": self.queue_depth_bytes,
            "rate_bps": self.rate_bps,
        }

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; False on tail drop."""
        if self._peer is None:
            self.drops.count(packet.wire_len)
            return False
        if self.coalesce:
            return self._reserve_tx(packet, self.sim.now)
        size = packet.wire_len
        if self._tx_fifo_bytes + size > self.queue_bytes:
            self.drops.count(size)
            return False
        self._tx_fifo.append((packet, size))
        self._tx_fifo_bytes += size
        if not self._tx_busy:
            self._start_next_tx()
        return True

    def send_delayed(self, packet: Packet, delay_s: float) -> None:
        """Send ``packet`` after ``delay_s`` (e.g. a transceiver crossing).

        Coalescing ports fold the delay into the serialization reservation
        — no intermediate event; others schedule a plain deferred send.
        """
        if self.coalesce and self._peer is not None:
            self._reserve_tx(packet, self.sim.now + delay_s)
        else:
            self.sim.schedule(delay_s, self.send, packet)

    def send_at(self, packet: Packet, at_s: float, size: int | None = None) -> bool:
        """Send ``packet`` at absolute (virtual) time ``at_s``.

        On a coalescing port the reservation is made immediately with the
        given arrival time — the foundation of burst traffic emission and
        of batched PPE egress.  ``at_s`` may lag ``now`` by up to one
        batch window (a batch tail replaying per-frame deliver times);
        serialization arithmetic still uses the virtual arrival, only the
        deliver *event* is clamped to now.  Non-coalescing ports fall
        back to a scheduled plain send (and cannot report the eventual
        tail-drop outcome, hence True).
        """
        if self.coalesce and self._peer is not None:
            return self._reserve_tx(packet, at_s, size)
        if at_s <= self.sim.now:
            return self.send(packet)
        self.sim.schedule(at_s - self.sim.now, self.send, packet)
        return True

    def _reserve_tx(
        self, packet: Packet, arrival: float, size: int | None = None
    ) -> bool:
        """Coalesced transmit: one deliver event per frame.

        The occupancy check drains the timeline to the frame's *arrival*
        (which may differ from now for delayed/burst/virtual sends): that
        is the state the event-per-frame execution would see when its
        deferred ``send`` ran at the arrival time.  Callers must reserve
        in non-decreasing arrival order, which every producer (serialized
        sources, per-direction module egress) naturally does.
        """
        if size is None:
            size = packet.wire_len
        # Inlined ServiceTimeline.drain/reserve and serialization_time
        # (hot path): framing arithmetic is pure int and the float
        # operations run in the helper's exact order, so timestamps and
        # occupancy are bit-identical to the out-of-line versions.
        timeline = self._timeline
        reservations = timeline._pending
        pending_bytes = timeline.pending_bytes
        while reservations and reservations[0][0] <= arrival:
            pending_bytes -= reservations.popleft()[1]
        if pending_bytes + size > self.queue_bytes:
            timeline.pending_bytes = pending_bytes
            self.drops.count(size)
            return False
        framed = size + 4
        if framed < 64:
            framed = 64
        service = (framed + 20) * 8 / self.rate_bps
        free_at = timeline.free_at
        start = arrival if arrival > free_at else free_at
        finish = start + service
        timeline.free_at = finish
        reservations.append((start, size))
        timeline.pending_bytes = pending_bytes + size
        when = finish + self._propagation_s
        peer = self._peer
        if peer.batch_rx:
            # Batch-aware receiver: fold this frame into one flush event
            # per producing burst.  Batch handlers get the delivery time
            # as data; per-frame handlers read the meta stamp.
            if self._pending_bursts:
                # Per-frame traffic mixing with pending compiled bursts:
                # materialize the bursts first so one flush run preserves
                # global delivery order (burst whens precede this frame's).
                self._materialize_pending_bursts()
            if peer._batch_handler is None:
                packet.meta["link_deliver_s"] = when
            pending = self._pending_rx
            pending.append((packet, size, when))
            if len(pending) == 1:
                self.sim.schedule_at(
                    when if when > self.sim.now else self.sim.now,
                    self._flush_rx,
                )
            return True
        if when < self.sim.now:
            # A virtual arrival far enough in the past that the frame
            # "already" left: deliver immediately (bounded by the batch
            # window; the reservation arithmetic stays exact regardless).
            when = self.sim.now
        self.sim.schedule_at(when, self._coalesced_deliver, packet)
        return True

    def _coalesced_deliver(self, packet: Packet) -> None:
        size = packet.wire_len
        self.tx.count(size)
        peer = self._peer
        if peer is not None:
            peer._deliver(packet, size)

    # ------------------------------------------------------------------
    # Compiled burst transmit (struct-of-arrays lane)
    # ------------------------------------------------------------------
    def send_burst(
        self, template: Packet, size: int, times: "np.ndarray"
    ) -> int:
        """Transmit a burst of identical frames at the given arrival times.

        ``template`` is the shared frame (never copied on the fused path),
        ``size`` its wire length and ``times`` a non-decreasing float64
        vector of virtual arrival times.  Admission, serialization and
        delivery timestamps are bit-identical to calling :meth:`send_at`
        once per frame; the whole burst costs a handful of Python-level
        operations instead.  Returns the number of admitted frames.
        """
        times = np.ascontiguousarray(times, dtype=np.float64)
        n = len(times)
        if n == 0:
            return 0
        if self._peer is None:
            self.drops.packets += n
            self.drops.bytes += n * size
            return 0
        if not self.coalesce:
            # Event-per-frame port: replay as individual sends.
            for at in times.tolist():
                self.send_at(template.copy(), at, size)
            return n
        timeline = self._timeline
        reservations = timeline._pending
        # Same framing arithmetic and float-op order as _reserve_tx.
        framed = size + 4
        if framed < 64:
            framed = 64
        service = (framed + 20) * 8 / self.rate_bps
        whens = None
        # Amortized drain to the burst head — the state _reserve_tx would
        # see at the first arrival (each reservation pops once ever).
        first = float(times[0])
        pending_bytes = timeline.pending_bytes
        while reservations and reservations[0][0] <= first:
            pending_bytes -= reservations.popleft()[1]
        timeline.pending_bytes = pending_bytes
        if timeline.pending_bytes + n * size <= self.queue_bytes:
            # Conservative no-drop precheck (occupancy only shrinks as the
            # timeline drains), so admission cannot tail-drop: chain the
            # reservations vectorially.
            chained = chain_reservations(times, service, timeline.free_at)
            if chained is not None:
                starts, finishes = chained
                timeline.free_at = float(finishes[-1])
                for start in starts.tolist():
                    reservations.append((start, size))
                timeline.pending_bytes += n * size
                whens = finishes + self._propagation_s
        if whens is None:
            # Exact scalar replay of _reserve_tx per frame.
            pending_bytes = timeline.pending_bytes
            free_at = timeline.free_at
            queue_bytes = self.queue_bytes
            admitted: list[float] = []
            admit = admitted.append
            dropped = 0
            for at in times.tolist():
                while reservations and reservations[0][0] <= at:
                    pending_bytes -= reservations.popleft()[1]
                if pending_bytes + size > queue_bytes:
                    dropped += 1
                    continue
                start = at if at > free_at else free_at
                finish = start + service
                free_at = finish
                reservations.append((start, size))
                pending_bytes += size
                admit(finish + self._propagation_s)
            timeline.free_at = free_at
            timeline.pending_bytes = pending_bytes
            if dropped:
                self.drops.packets += dropped
                self.drops.bytes += dropped * size
            if not admitted:
                return 0
            whens = np.asarray(admitted)
        count = len(whens)
        peer = self._peer
        now = self.sim.now
        if not peer.batch_rx:
            # Per-frame receiver: replay the coalesced deliver events.
            for when in whens.tolist():
                self.sim.schedule_at(
                    when if when > now else now,
                    self._coalesced_deliver,
                    template.copy(),
                )
            return count
        if self._pending_rx:
            # Per-frame frames already pending: keep one flush run by
            # materializing this burst into the same pending list.
            stamp = peer._batch_handler is None
            pending = self._pending_rx
            for when in whens.tolist():
                packet = template.copy()
                if stamp:
                    packet.meta["link_deliver_s"] = when
                pending.append((packet, size, when))
            return count
        pending_bursts = self._pending_bursts
        pending_bursts.append((template, size, whens))
        if self._burst_flush_event is None:
            first = float(whens[0])
            self._burst_flush_event = self.sim.schedule_at(
                first if first > now else now, self._flush_rx_bursts
            )
        return count

    def _materialize_pending_bursts(self) -> None:
        """Deopt pending bursts into the per-frame pending-rx lane."""
        event = self._burst_flush_event
        if event is not None:
            event.cancel()
            self._burst_flush_event = None
        bursts = self._pending_bursts
        self._pending_bursts = []
        pending = self._pending_rx
        was_empty = not pending
        peer = self._peer
        stamp = peer is None or peer._batch_handler is None
        for template, size, whens in bursts:
            for when in whens.tolist():
                packet = template.copy()
                if stamp:
                    packet.meta["link_deliver_s"] = when
                pending.append((packet, size, when))
        if pending and was_empty:
            first = pending[0][2]
            now = self.sim.now
            self.sim.schedule_at(
                first if first > now else now, self._flush_rx
            )

    def _flush_rx_bursts(self) -> None:
        self._burst_flush_event = None
        bursts = self._pending_bursts
        self._pending_bursts = []
        horizon = self.sim.horizon
        if bursts and float(bursts[-1][2][-1]) > horizon:
            # Frames due beyond the run window stay pending, exactly like
            # _flush_rx: split each burst at the horizon and re-arm.
            flushed: list[tuple[Packet, int, np.ndarray]] = []
            kept: list[tuple[Packet, int, np.ndarray]] = []
            for template, size, whens in bursts:
                split = int(np.searchsorted(whens, horizon, side="right"))
                if split == len(whens):
                    flushed.append((template, size, whens))
                    continue
                if split:
                    flushed.append((template, size, whens[:split]))
                kept.append((template, size, whens[split:]))
            bursts = flushed
            if kept:
                self._pending_bursts = kept
                self._burst_flush_event = self.sim.schedule_at(
                    float(kept[0][2][0]), self._flush_rx_bursts
                )
        if not bursts:
            return
        peer = self._peer
        tx = self.tx
        if peer is None:
            for _template, size, whens in bursts:
                tx.packets += len(whens)
                tx.bytes += len(whens) * size
            return
        begin = peer.rx_flush_begin
        if begin is not None:
            begin()
        burst_handler = peer._burst_handler
        batch_handler = peer._batch_handler
        handler = peer._handler
        frames = 0
        total_bytes = 0
        for template, size, whens in bursts:
            count = len(whens)
            frames += count
            total_bytes += count * size
            if burst_handler is not None:
                burst_handler(peer, template, size, whens)
            elif batch_handler is not None:
                batch_handler(
                    peer,
                    [
                        (template.copy(), size, when)
                        for when in whens.tolist()
                    ],
                )
            elif handler is not None:
                for when in whens.tolist():
                    packet = template.copy()
                    packet.meta["link_deliver_s"] = when
                    handler(peer, packet)
        tx.packets += frames
        tx.bytes += total_bytes
        rx = peer.rx
        rx.packets += frames
        rx.bytes += total_bytes
        end = peer.rx_flush_end
        if end is not None:
            end()

    def _flush_rx(self) -> None:
        pending = self._pending_rx
        self._pending_rx = []
        if pending[-1][2] > self.sim.horizon:
            # Frames due beyond the current run window stay pending (the
            # event-per-frame execution would not have delivered them);
            # a later run resumes them from the re-armed flush.
            horizon = self.sim.horizon
            split = next(
                i for i, entry in enumerate(pending) if entry[2] > horizon
            )
            self._pending_rx = pending[split:]
            self.sim.schedule_at(self._pending_rx[0][2], self._flush_rx)
            pending = pending[:split]
        peer = self._peer
        tx = self.tx
        if peer is None:
            # Link torn down after reservation: same silent in-flight loss
            # as the per-frame coalesced deliver.
            for _packet, size, _when in pending:
                tx.count(size)
            return
        begin = peer.rx_flush_begin
        if begin is not None:
            begin()
        batch_handler = peer._batch_handler
        total_bytes = 0
        if batch_handler is not None:
            for entry in pending:
                total_bytes += entry[1]
            batch_handler(peer, pending)
        else:
            handler = peer._handler
            if handler is None:
                for _packet, size, _when in pending:
                    total_bytes += size
            else:
                for packet, size, _when in pending:
                    total_bytes += size
                    handler(peer, packet)
        frames = len(pending)
        tx.packets += frames
        tx.bytes += total_bytes
        rx = peer.rx
        rx.packets += frames
        rx.bytes += total_bytes
        end = peer.rx_flush_end
        if end is not None:
            end()

    def _start_next_tx(self) -> None:
        if not self._tx_fifo:
            self._tx_busy = False
            return
        self._tx_busy = True
        packet, size = self._tx_fifo.popleft()
        self._tx_fifo_bytes -= size
        tx_time = serialization_time(size, self.rate_bps)
        self.sim.schedule(tx_time, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        self.tx.count(packet.wire_len)
        peer = self._peer
        if peer is not None:
            self.sim.schedule(self._propagation_s, peer._deliver, packet)
        self._start_next_tx()

    def _deliver(self, packet: Packet, size: int | None = None) -> None:
        self.rx.count(packet.wire_len if size is None else size)
        if self._handler is not None:
            self._handler(self, packet)


def connect(a: Port, b: Port, propagation_s: float = DEFAULT_PROPAGATION_S) -> None:
    """Module-level convenience mirroring :meth:`Port.connect`."""
    a.connect(b, propagation_s)
