"""Ethernet MAC-layer arithmetic: framing overheads and line-rate limits.

The paper's line-rate claims (10 Gbps NAT at 156.25 MHz × 64 bit) are only
meaningful against correct Ethernet accounting: every frame occupies
``preamble + frame + FCS + IFG`` on the wire, so 10GbE tops out at
14.88 Mpps for minimum-size frames.  These helpers centralize that math.
"""

from __future__ import annotations

from ..errors import ConfigError

PREAMBLE_BYTES = 8  # preamble (7) + SFD (1)
FCS_BYTES = 4
IFG_BYTES = 12
PER_FRAME_OVERHEAD = PREAMBLE_BYTES + FCS_BYTES + IFG_BYTES  # 24 bytes

MIN_FRAME_BYTES = 64  # including FCS
MAX_FRAME_BYTES = 1518  # including FCS, untagged
JUMBO_FRAME_BYTES = 9018


def frame_wire_bytes(frame_len_no_fcs: int) -> int:
    """Bytes a frame occupies on the wire including preamble, FCS, and IFG.

    ``frame_len_no_fcs`` is the L2 frame without FCS (what
    ``Packet.wire_len`` reports); short frames are padded to the 64-byte
    minimum like a real MAC does.
    """
    if frame_len_no_fcs < 0:
        raise ConfigError("negative frame length")
    framed = max(frame_len_no_fcs + FCS_BYTES, MIN_FRAME_BYTES)
    return framed + PREAMBLE_BYTES + IFG_BYTES


def serialization_time(frame_len_no_fcs: int, rate_bps: float) -> float:
    """Seconds a frame occupies the wire at ``rate_bps``."""
    if rate_bps <= 0:
        raise ConfigError("rate must be positive")
    return frame_wire_bytes(frame_len_no_fcs) * 8 / rate_bps


def max_frame_rate(rate_bps: float, frame_len_no_fcs: int) -> float:
    """Theoretical frames/second ceiling for back-to-back frames."""
    return rate_bps / (frame_wire_bytes(frame_len_no_fcs) * 8)


def goodput_fraction(frame_len_no_fcs: int) -> float:
    """Fraction of raw line rate available to the frame itself (no FCS)."""
    return frame_len_no_fcs * 8 / (frame_wire_bytes(frame_len_no_fcs) * 8)


def line_rate_packets(rate_bps: float, frame_len_no_fcs: int, duration: float) -> int:
    """How many back-to-back frames fit into ``duration`` seconds."""
    if duration < 0:
        raise ConfigError("negative duration")
    return int(max_frame_rate(rate_bps, frame_len_no_fcs) * duration)
