"""Minimal classic-pcap (libpcap) file writer/reader.

Used by examples and tests to persist simulated traffic in a format any
standard tool can open.  Only LINKTYPE_ETHERNET with microsecond timestamps
is supported — exactly what the toolkit generates.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterator

from ..errors import ConfigError, ParseError

PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1
_GLOBAL_HDR = struct.Struct("<IHHiIII")
_RECORD_HDR = struct.Struct("<IIII")


class PcapWriter:
    """Streams ``(timestamp, frame_bytes)`` records to a pcap file."""

    def __init__(self, path: str | Path, snaplen: int = 65535) -> None:
        self.path = Path(path)
        self._file: BinaryIO = open(self.path, "wb")
        self._file.write(
            _GLOBAL_HDR.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET)
        )
        self.snaplen = snaplen
        self.records = 0

    def write(self, timestamp: float, frame: bytes) -> None:
        """Append one frame captured at ``timestamp`` (seconds)."""
        if timestamp < 0:
            raise ConfigError("negative pcap timestamp")
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1_000_000))
        if micros == 1_000_000:
            seconds, micros = seconds + 1, 0
        captured = frame[: self.snaplen]
        self._file.write(
            _RECORD_HDR.pack(seconds, micros, len(captured), len(frame))
        )
        self._file.write(captured)
        self.records += 1

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_pcap(path: str | Path) -> Iterator[tuple[float, bytes]]:
    """Yield ``(timestamp, frame_bytes)`` records from a classic pcap file."""
    with open(path, "rb") as handle:
        header = handle.read(_GLOBAL_HDR.size)
        if len(header) < _GLOBAL_HDR.size:
            raise ParseError("truncated pcap global header")
        magic = struct.unpack_from("<I", header)[0]
        if magic != PCAP_MAGIC:
            raise ParseError(f"unsupported pcap magic {magic:#x}")
        linktype = _GLOBAL_HDR.unpack(header)[6]
        if linktype != LINKTYPE_ETHERNET:
            raise ParseError(f"unsupported linktype {linktype}")
        while True:
            record = handle.read(_RECORD_HDR.size)
            if not record:
                return
            if len(record) < _RECORD_HDR.size:
                raise ParseError("truncated pcap record header")
            seconds, micros, caplen, _ = _RECORD_HDR.unpack(record)
            frame = handle.read(caplen)
            if len(frame) < caplen:
                raise ParseError("truncated pcap record body")
            yield seconds + micros / 1_000_000, frame
