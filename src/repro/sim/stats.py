"""Measurement primitives: counters, rate meters, histograms.

These are the observability substrate both for the simulated devices (PPE
counters exposed through the control plane) and for the benchmark harnesses
(throughput/latency series that regenerate the paper's numbers).
"""

from __future__ import annotations

import math
from bisect import bisect_right

from ..errors import ConfigError


class Counter:
    """A named monotonically increasing packet/byte counter pair."""

    __slots__ = ("name", "packets", "bytes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.packets = 0
        self.bytes = 0

    def count(self, num_bytes: int = 0) -> None:
        """Record one packet of ``num_bytes`` bytes."""
        self.packets += 1
        self.bytes += num_bytes

    def reset(self) -> None:
        self.packets = 0
        self.bytes = 0

    def snapshot(self) -> dict[str, int]:
        return {"packets": self.packets, "bytes": self.bytes}

    def metric_values(self) -> dict[str, int]:
        """Flat :class:`~repro.obs.registry.MetricSource` view."""
        return {"packets": self.packets, "bytes": self.bytes}

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}: {self.packets} pkts / {self.bytes} B)"


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def metric_values(self) -> dict[str, float]:
        """Flat :class:`~repro.obs.registry.MetricSource` view."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class RateMeter:
    """Measures achieved bit/packet rate over the observed interval.

    ``observe`` records a packet at a timestamp; the meter tracks first/last
    timestamps and totals.  ``bits_per_second`` uses the span between first
    and last observation (optionally overridden with an explicit window),
    matching how line-rate tests on real traffic generators report goodput.

    A flow with a single observation has a zero span even though bytes
    were delivered; ``min_window_s`` (constructor default or per-call
    override) supplies the fallback window so such flows report a finite
    rate instead of 0.0.
    """

    def __init__(self, name: str = "rate", min_window_s: float | None = None) -> None:
        self.name = name
        self.min_window_s = min_window_s
        self.total_packets = 0
        self.total_bytes = 0
        self.first_ts: float | None = None
        self.last_ts: float | None = None

    def observe(self, timestamp: float, num_bytes: int) -> None:
        if self.first_ts is None:
            self.first_ts = timestamp
        self.last_ts = timestamp
        self.total_packets += 1
        self.total_bytes += num_bytes

    def observe_bulk(
        self, first_ts: float, last_ts: float, packets: int, num_bytes: int
    ) -> None:
        """Record ``packets`` uniform observations spanning an interval.

        O(1) equivalent of calling :meth:`observe` once per packet with
        ``num_bytes // packets`` each — the compiled burst lane's meter
        update.  ``num_bytes`` is the total across the burst.
        """
        if packets <= 0:
            return
        if self.first_ts is None:
            self.first_ts = first_ts
        self.last_ts = last_ts
        self.total_packets += packets
        self.total_bytes += num_bytes

    @property
    def span(self) -> float:
        if self.first_ts is None or self.last_ts is None:
            return 0.0
        return self.last_ts - self.first_ts

    def _effective_span(
        self, window: float | None, min_window_s: float | None
    ) -> float:
        span = window if window is not None else self.span
        if span <= 0:
            fallback = (
                min_window_s if min_window_s is not None else self.min_window_s
            )
            # Only fall back when something was actually observed: an
            # untouched meter still reads 0, never a phantom rate.
            if fallback is not None and fallback > 0 and self.total_packets:
                return fallback
            return 0.0
        return span

    def bits_per_second(
        self, window: float | None = None, min_window_s: float | None = None
    ) -> float:
        span = self._effective_span(window, min_window_s)
        if span <= 0:
            return 0.0
        return self.total_bytes * 8 / span

    def packets_per_second(
        self, window: float | None = None, min_window_s: float | None = None
    ) -> float:
        span = self._effective_span(window, min_window_s)
        if span <= 0:
            return 0.0
        return self.total_packets / span

    def metric_values(self) -> dict[str, float]:
        """Flat :class:`~repro.obs.registry.MetricSource` view."""
        return {
            "packets": self.total_packets,
            "bytes": self.total_bytes,
            "span_s": self.span,
            "bits_per_second": self.bits_per_second(),
        }


class Histogram:
    """Fixed-bucket histogram with percentile queries.

    Buckets are defined by ascending upper bounds; values above the last
    bound land in an overflow bucket.  Percentiles are answered at bucket
    granularity (upper-bound estimate), which is what hardware telemetry
    with power-of-two latency bins reports.
    """

    def __init__(self, bounds: list[float]) -> None:
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigError("histogram bounds must be strictly ascending")
        self.bounds = list(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0

    @classmethod
    def exponential(cls, start: float, factor: float, count: int) -> "Histogram":
        """Power-law bucket bounds: start, start*factor, ..."""
        if start <= 0 or factor <= 1 or count < 1:
            raise ConfigError("invalid exponential histogram parameters")
        return cls([start * factor**i for i in range(count)])

    def add(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.total += 1

    def percentile(self, pct: float) -> float:
        """Upper-bound estimate of the ``pct``-th percentile (0 < pct ≤ 100)."""
        if not 0 < pct <= 100:
            raise ConfigError("percentile must be in (0, 100]")
        if self.total == 0:
            return 0.0
        threshold = math.ceil(self.total * pct / 100)
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= threshold:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf  # pragma: no cover - unreachable

    def snapshot(self) -> dict[str, float]:
        return {
            "total": self.total,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }

    def metric_values(self) -> dict[str, float]:
        """Flat :class:`~repro.obs.registry.MetricSource` view."""
        return {
            "total": self.total,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }
