"""Discrete-event simulation engine.

A deliberately small, deterministic event loop: events are ``(time, seq)``
ordered, where ``seq`` is a monotonically increasing tiebreaker so that
same-timestamp events fire in scheduling order.  Time is a float in seconds;
at 10 Gbps a 64-byte frame lasts ~67 ns, comfortably inside double precision
for the simulated horizons used here (milliseconds to seconds).
"""

from __future__ import annotations

import heapq
from collections import deque
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..obs.profiler import LoopProfiler


class EventHandle:
    """Handle returned by ``schedule``; allows O(1) cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., Any], args: tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """The event loop.

    Components keep a reference to the simulator, call
    :meth:`schedule`/:meth:`schedule_at` to arrange callbacks, and read
    :attr:`now` for the current simulation time.
    """

    def __init__(self) -> None:
        self._queue: list[EventHandle] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self.events_processed = 0
        # Upper bound of the current run() window.  Batched components that
        # replay several virtual times inside one event consult this so
        # they never deliver work the event-per-frame execution would have
        # left beyond the window.
        self.horizon = float("inf")
        # Optional event-loop profiler (repro.obs.profiler.LoopProfiler):
        # when installed, each dispatched event's wall-clock cost is
        # attributed to the handling component class.  None costs one
        # attribute load per event.
        self.profiler: "LoopProfiler | None" = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (when={when}, now={self._now})"
            )
        self._seq += 1
        event = EventHandle(when, self._seq, callback, args)
        heapq.heappush(self._queue, event)
        return event

    def peek_next_time(self) -> float | None:
        """Timestamp of the next pending event, if any."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run a single event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            profiler = self.profiler
            if profiler is None:
                event.callback(*event.args)
            else:
                # Wall-clock reads are the profiler's whole purpose; they
                # attribute real CPU time and never feed simulated state.
                start = perf_counter()  # flexsfp: allow(det-wallclock)
                try:
                    event.callback(*event.args)
                finally:
                    elapsed = perf_counter() - start  # flexsfp: allow(det-wallclock)
                    profiler.record(event.callback, elapsed)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run events until the queue drains, ``until``, or ``max_events``.

        Returns the simulation time when the run stopped.  When ``until`` is
        given, time is advanced to exactly ``until`` even if the queue drains
        earlier (so rate meters read consistent windows).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self.horizon = float("inf") if until is None else until
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self.peek_next_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
            self.horizon = float("inf")
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled queued events."""
        return sum(1 for e in self._queue if not e.cancelled)


class ServiceTimeline:
    """Analytic busy clock for a single server processing frames in batches.

    The event-per-frame pattern (schedule service completion, then schedule
    the next start) costs one or two heap events per frame.  Batched
    components instead *reserve* service slots on this timeline — the
    arithmetic is identical to the sequential schedule (``start = max(now,
    free_at)``, ``finish = start + service``, same float operations in the
    same order), so per-frame start/finish timestamps are bit-identical to
    the unbatched execution while only one real event fires per batch.

    The timeline also tracks byte occupancy: a reserved frame's bytes stay
    "queued" until its virtual start time passes, which keeps tail-drop /
    overload decisions at intermediate arrival events identical to the
    event-per-frame execution.  Call :meth:`drain` with the current
    simulation time before reading :attr:`pending_bytes`.
    """

    __slots__ = ("free_at", "pending_bytes", "_pending")

    def __init__(self) -> None:
        self.free_at = 0.0
        self.pending_bytes = 0
        self._pending: deque[tuple[float, int]] = deque()

    def reserve(self, now: float, service_s: float, size: int) -> tuple[float, float]:
        """Reserve one service slot; returns ``(start, finish)`` times."""
        start = now if now > self.free_at else self.free_at
        finish = start + service_s
        self.free_at = finish
        self._pending.append((start, size))
        self.pending_bytes += size
        return start, finish

    def drain(self, now: float) -> None:
        """Release the bytes of every reservation whose start has passed."""
        pending = self._pending
        while pending and pending[0][0] <= now:
            self.pending_bytes -= pending.popleft()[1]

    def reset(self) -> None:
        self.free_at = 0.0
        self.pending_bytes = 0
        self._pending.clear()


class PeriodicTask:
    """Re-arms a callback every ``interval`` seconds until stopped."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        start_after: float | None = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self._stopped = False
        self._handle = sim.schedule(
            interval if start_after is None else start_after, self._fire
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback()
        if not self._stopped:
            self._handle = self.sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        """Stop the periodic task (pending occurrence is cancelled)."""
        self._stopped = True
        self._handle.cancel()
