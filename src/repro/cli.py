"""Command-line interface: feasibility reports from the terminal.

``python -m repro.cli <command>`` (or the ``flexsfp`` console script)
exposes the toolkit's analysis surface without writing any code:

* ``apps`` / ``devices`` — what can be built, and on what.
* ``build APP`` — run the build flow, print the Table-1-style report.
* ``table1`` / ``table2`` / ``table3`` — regenerate the paper's tables.
* ``power`` — the §5 power series for a deployed application.
* ``bom`` — the FlexSFP cost breakdown at a production volume.
* ``scale GBPS`` — plan an operating point for a target line rate.
* ``chaos PLAN`` — replay a named fault plan through the chaos gauntlet.
* ``metrics`` — run an instrumented scenario, export its registry.
* ``trace`` — per-packet stage spans through a scenario, as JSON Lines.
* ``check`` — static verification: IR rules and XDP-program analysis over
  applications and example sources, or (``--self``) the determinism
  linter over the toolkit's own sim-critical source.
* ``run`` — supervised sharded fleet run: per-shard deadlines, bounded
  deterministic retry, ``--checkpoint``/``--resume`` journalling, and a
  distinct exit code (``4``) when retries were exhausted and the merged
  artifact is explicitly partial.
* ``matrix`` — sweep engine/fastpath/shards/workers/device/fault-plan
  axes over one scenario, diff every cell against a baseline cell, and
  exit ``5`` on semantic divergence (with ``--fail-on-diverged``).
* ``diff`` — compare two saved ``flexsfp.run/1`` artifacts; exit ``5``
  when they diverge semantically, ``0`` when identical or timing-only.

Every subcommand accepts ``--json``: the human table renderer is swapped
for a single canonical schema-tagged JSON document on stdout, built by
:mod:`repro.obs.export`.  The run-producing commands (``run``, ``chaos``,
``matrix``) all emit the unified ``flexsfp.run/1`` artifact — one
document shape for every entry point, diffable with ``flexsfp diff``.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path

from ._util import warn_deprecated, write_text_atomic
from .analysis import (
    analyze_app,
    check_app,
    corpus_digest,
    default_lint_root,
    effect_findings,
    fusion_engagement,
    line_rate_verdict,
    lint_paths,
    scan_source_file,
    severity_counts,
    sort_findings,
)
from .apps import APP_FACTORIES, create_app
from .artifact import (
    artifact_from_scenario_run,
    diff_artifacts,
    load_artifact,
)
from .core.shells import ControlPlaneClass, ShellKind, ShellSpec
from .costmodel import FlexSfpBom, table3_rows
from .engine import ENGINES
from .errors import ConfigError, ReproError
from .faults import NAMED_PLANS
from .fpga import (
    DEVICES,
    FORM_FACTORS,
    TimingSpec,
    envelope_check,
    get_device,
    table2_rows,
)
from .hls import compile_app
from .matrix import (
    MatrixAxes,
    parse_bool_axis,
    parse_int_axis,
    parse_optional_axis,
    run_matrix,
)
from .obs import (
    SCENARIO_KINDS,
    SCENARIOS,
    SCHEMA_DIFF,
    SCHEMA_FLEET,
    SCHEMA_TRACE,
    ScenarioSpec,
    json_document,
    metrics_json,
    metrics_jsonl,
    prometheus_text,
    table_json,
)
from .testbed import PowerTestbed

_SHELLS = {kind.value: kind for kind in ShellKind}

# Exit codes beyond the usual 0/1/2: a supervised fleet run that lost
# shards completes and writes its artifact, but says so unmistakably
# (4); a matrix or artifact diff that found *semantic* divergence —
# different computed results, not just timings — says so with 5.
EXIT_PARTIAL = 4
EXIT_DIVERGED = 5


# ----------------------------------------------------------------------
# Renderers: every tabular command goes through _emit (one of two
# renderers — the aligned-text table or a canonical JSON document).
# ----------------------------------------------------------------------
def _print_rows(headers: tuple[str, ...], rows: list[tuple]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))


def _emit(
    args: argparse.Namespace,
    title: str,
    headers: tuple[str, ...],
    rows: list[tuple],
    **extra: object,
) -> None:
    """Render one command result: text table or ``flexsfp.table/1`` JSON."""
    if getattr(args, "json", False):
        print(table_json(title, headers, rows, **extra))
    else:
        _print_rows(headers, rows)


def _shell_from_args(args: argparse.Namespace) -> ShellSpec:
    return ShellSpec(
        kind=_SHELLS[args.shell],
        line_rate_bps=args.rate * 1e9,
        datapath_bits=args.width,
        control_plane=(
            ControlPlaneClass.SOC if getattr(args, "soc", False) else ControlPlaneClass.SOFTCORE
        ),
    )


def _engine_from_args(args: argparse.Namespace) -> str | None:
    """The ``--engine`` tier, after rejecting mixed knob spellings.

    ``--engine`` and the legacy ``--fastpath``/``--batch`` flags are two
    spellings of the same selection; mixing them is ambiguous (which one
    carries the options?) and exits 2.  Explicit legacy flags keep
    working but emit a deprecation warning — ``flexsfp metrics
    --fail-on-deprecated`` turns that warning into exit 3.
    """
    engine = getattr(args, "engine", None)
    legacy = bool(getattr(args, "fastpath", False)) or bool(
        getattr(args, "batch", 0)
    )
    if engine is not None and legacy:
        raise ConfigError(
            "--engine conflicts with the legacy --fastpath/--batch flags; "
            "pass the engine tier alone and let it carry the options"
        )
    if legacy:
        warn_deprecated("flexsfp --fastpath/--batch", "--engine TIER")
    return engine


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_apps(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(APP_FACTORIES):
        app = create_app(name)
        spec = app.pipeline_spec()
        rows.append((name, spec.chain_depth, spec.pipeline_depth, spec.description))
    _emit(args, "apps", ("application", "chain", "stages", "description"), rows)
    return 0


def cmd_devices(args: argparse.Namespace) -> int:
    rows = [
        (
            d.name,
            f"{d.logic_elements:,}",
            f"{d.lut4:,}",
            d.usram,
            d.lsram,
            f"{d.sram_kbit / 1024:.1f} Mb",
            f"${d.unit_price_usd:.0f}",
        )
        for d in DEVICES.values()
    ]
    _emit(
        args,
        "devices",
        ("device", "LE", "4LUT", "uSRAM", "LSRAM", "SRAM", "price"),
        rows,
    )
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    app = create_app(args.app)
    shell = _shell_from_args(args)
    device = get_device(args.device)
    clock_hz = args.clock * 1e6 if args.clock else None
    result = compile_app(
        app,
        shell,
        device=device,
        clock_hz=clock_hz,
        strict=False,
        flow_cache_entries=(
            args.cache_entries if getattr(args, "fastpath", False) else None
        ),
    )
    report = result.report
    headers = ("component", "4LUT", "FF", "uSRAM", "LSRAM")
    rows = [tuple(row) for row in report.table1_rows()]
    if getattr(args, "json", False):
        print(
            table_json(
                "build",
                headers,
                rows,
                app=args.app,
                device=device.name,
                shell=shell.kind.value,
                datapath_bits=report.timing.datapath_bits,
                clock_mhz=report.timing.clock_hz / 1e6,
                utilization=dict(report.utilization),
                fits=report.fits,
                meets_timing=report.meets_timing,
                notes=list(report.notes),
            )
        )
        return 0 if report.fits and report.meets_timing else 1
    print(
        f"{args.app} on {device.name} / {shell.kind.value}: "
        f"{report.timing.datapath_bits} b @ {report.timing.clock_hz / 1e6:.2f} MHz"
    )
    _print_rows(headers, rows)
    util = ", ".join(f"{k} {v:.0%}" for k, v in report.utilization.items())
    print(f"utilization: {util}")
    print(f"fits: {report.fits}   meets timing: {report.meets_timing}")
    for note in report.notes:
        print(f"note: {note}")
    return 0 if report.fits and report.meets_timing else 1


def cmd_table1(args: argparse.Namespace) -> int:
    args.app = "nat"
    args.device = "MPF200T"
    args.clock = None
    args.fastpath = False
    return cmd_build(args)


def cmd_table2(args: argparse.Namespace) -> int:
    rows = [
        (
            r["name"],
            f"{r['logic_le']:,.0f}",
            f"{r['bram_kbit']:,.0f}",
            r["fit_class"],
        )
        for r in table2_rows()
    ]
    _emit(args, "table2", ("design", "logic (LE)", "BRAM (kbit)", "verdict"), rows)
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    rows = [
        (
            r["solution"],
            f"{r['raw_usd'][0]:.0f}-{r['raw_usd'][1]:.0f}",
            r["raw_w"],
            f"{r['usd_per_10g'][0]:.0f}-{r['usd_per_10g'][1]:.0f}",
            r["w_per_10g"],
        )
        for r in table3_rows(units=args.units)
    ]
    _emit(
        args,
        "table3",
        ("solution", "raw $", "raw W", "$/10G", "W/10G"),
        rows,
        units=args.units,
    )
    return 0


def cmd_power(args: argparse.Namespace) -> int:
    app = create_app(args.app)
    build = compile_app(app, ShellSpec())
    testbed = PowerTestbed()
    samples = testbed.paper_series(build.report.total, build.report.timing.clock_hz)
    _emit(
        args,
        "power",
        ("configuration", "watts"),
        [(s.label, f"{s.watts:.3f}") for s in samples],
        app=args.app,
    )
    return 0


def cmd_bom(args: argparse.Namespace) -> int:
    bom = FlexSfpBom()
    rows = [
        (r["item"], r["low_usd"], r["high_usd"], f"{r['share_of_high']:.0%}")
        for r in bom.breakdown(args.units)
    ]
    low, high = bom.total_range(args.units)
    if args.json:
        print(
            table_json(
                "bom",
                ("item", "low $", "high $", "share"),
                rows,
                units=args.units,
                total_low_usd=low,
                total_high_usd=high,
            )
        )
        return 0
    _print_rows(("item", "low $", "high $", "share"), rows)
    print(f"total at {args.units:,} units: ${low:.0f}-{high:.0f}")
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    line_rate = args.gbps * 1e9
    clocks = (156.25e6, 200e6, 250e6, 312.5e6, 400e6)
    candidates = []
    for clock in clocks:
        width = 8
        while width <= 2048:
            _, sustained = TimingSpec(width, clock).worst_case_frame(line_rate)
            if sustained:
                # Tie-break toward the lower clock (the prototype's choice:
                # 64 b @ 156.25 MHz rather than 32 b @ 312.5 MHz).
                candidates.append((width * clock, clock, width))
                break
            width *= 2
    headers = ("gbps", "width_bits", "clock_mhz", "raw_gbps")
    if not candidates:
        if args.json:
            print(table_json("scale", headers, [], gbps=args.gbps, feasible=False))
        else:
            print(f"no single-pipeline operating point sustains {args.gbps:.0f} Gbps")
        return 1
    _, clock, width = min(candidates)
    if args.json:
        row = (args.gbps, width, clock / 1e6, width * clock / 1e9)
        print(table_json("scale", headers, [row], gbps=args.gbps, feasible=True))
        return 0
    print(
        f"{args.gbps:.0f} Gbps -> {width} b datapath @ {clock / 1e6:.2f} MHz "
        f"(raw {width * clock / 1e9:.1f} Gbps)"
    )
    return 0


def cmd_envelope(args: argparse.Namespace) -> int:
    app = create_app(args.app)
    shell = ShellSpec(
        line_rate_bps=args.gbps * 1e9, datapath_bits=args.width
    )
    clock_hz = args.clock * 1e6 if args.clock else None
    build = compile_app(app, shell, clock_hz=clock_hz, strict=False)
    rows = []
    for form_factor in FORM_FACTORS.values():
        try:
            check = envelope_check(
                form_factor,
                args.gbps,
                build.report.total,
                build.report.timing.clock_hz,
            )
        except ConfigError:
            rows.append((form_factor.name, "-", form_factor.power_envelope_w, "no lanes"))
            continue
        rows.append(
            (
                form_factor.name,
                f"{check.total_w:.2f}",
                check.envelope_w,
                "fits" if check.fits else "over budget",
            )
        )
    _emit(
        args,
        "envelope",
        ("form factor", "module W", "envelope W", "verdict"),
        rows,
        app=args.app,
        gbps=args.gbps,
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    plan = NAMED_PLANS[args.plan](args.seed)
    # The gauntlet runs through the instrumented chaos scenario (same
    # run_gauntlet invocation, same defaults, plus a metrics registry) so
    # the chaos CLI emits the same flexsfp.run/1 artifact as `flexsfp
    # run` and the benches.
    run = ScenarioSpec(
        kind="chaos",
        fault_plan=args.plan,
        seed=args.seed,
        engine=_engine_from_args(args),
        fastpath=True if args.fastpath else None,
        batch_size=args.batch if args.batch else None,
    ).run()
    result = run.summary
    findings = [
        {"time_s": e.time_s, "kind": e.kind, "target": e.target} for e in plan
    ]
    artifact = artifact_from_scenario_run(
        run, source="chaos-gauntlet", findings=findings
    )
    metric_rows = [
        ("packets sent", result["packets_sent"]),
        ("packets lost", result["packets_lost"]),
        ("loss fraction", f"{result['loss_fraction']:.4f}"),
        ("damage incidents", result["incidents"]),
        ("fleet repairs", result["repairs"]),
        ("self-healed fraction", f"{result['self_healed_fraction']:.2f}"),
        ("recovery time (ms)", f"{result['recovery_time_s'] * 1e3:.1f}"),
        ("watchdog reboots", result["watchdog_reboots"]),
        ("failed boots", result["failed_boots"]),
        ("healthy at end", result["healthy_at_end"]),
    ]
    document = artifact.document()
    if args.out is not None:
        write_text_atomic(args.out, document + "\n")
    if args.json:
        if args.legacy_table:
            warn_deprecated(
                "flexsfp chaos --json --legacy-table",
                "the flexsfp.run/1 document (default --json output)",
            )
            print(
                table_json(
                    "chaos",
                    ("metric", "value"),
                    metric_rows,
                    plan=args.plan,
                    seed=args.seed,
                    signature=plan.signature(),
                    events=[[e.time_s, e.kind, e.target] for e in plan],
                    result=dict(result),
                )
            )
        else:
            print(document)
        return 0
    print(f"plan {args.plan!r} seed={args.seed} sig={plan.signature()[:16]}…")
    _print_rows(
        ("t (ms)", "fault", "target"),
        [(f"{e.time_s * 1e3:.1f}", e.kind, e.target) for e in plan],
    )
    print()
    _print_rows(("metric", "value"), metric_rows)
    if args.out is not None:
        print(f"wrote {args.out}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    findings = []
    targets: list[str] = []
    apps = list(args.apps)
    examples_dir = args.examples
    # Bare `flexsfp check` sweeps everything shippable: every registered
    # application plus any XDP packet functions in ./examples.
    if not apps and not args.self_lint and examples_dir is None and not args.nfv:
        apps = sorted(APP_FACTORIES)
        if Path("examples").is_dir():
            examples_dir = "examples"
    nfv_price = None
    if args.nfv:
        from .nfv import Deployment, check_deployment, price_deployment
        from .nfv import default_nfv_tenants

        if args.tenants is not None:
            tenants = json.loads(Path(args.tenants).read_text())
        else:
            tenants = default_nfv_tenants()
        deployment = Deployment.from_dicts(
            tenants, device=get_device(args.device)
        )
        nfv_shell = _shell_from_args(args)
        findings += check_deployment(
            deployment, shell=nfv_shell, device=get_device(args.device)
        )
        nfv_price = price_deployment(
            deployment, shell=nfv_shell, device=get_device(args.device)
        )
        names = "+".join(spec.name for spec in deployment.tenants)
        targets.append(f"nfv:{names}")
    if args.self_lint:
        root = default_lint_root()
        findings += lint_paths([root])
        targets.append(f"self:{root}")
    effects_report: dict[str, dict] = {}
    fusibility_rows: list[tuple] = []
    fused: list[str] = []
    if apps:
        device = get_device(args.device)
        shell = _shell_from_args(args)
        for name in apps:
            app = create_app(name)
            summary = analyze_app(app)
            findings += check_app(app, device=device, shell=shell)
            # check_app already cross-checked any surviving profile;
            # include_profile=False keeps the findings deduplicated.
            findings += effect_findings(
                app, shell, summary=summary, include_profile=False
            )
            targets.append(f"app:{name}")
            engaged = fusion_engagement(app, summary)
            if engaged is not None:
                fused.append(name)
            if args.effects:
                payload = summary.to_dict()
                payload["engaged_mode"] = engaged
                payload["line_rate"] = line_rate_verdict(summary, shell).to_dict()
                payload["digest"] = summary.digest()
                effects_report[name] = payload
            if args.fusibility:
                fusibility_rows.append(
                    (
                        name,
                        summary.burst_mode,
                        engaged or "-",
                        summary.key_bits,
                        summary.rewrite_bits,
                        summary.digest(),
                        "; ".join(summary.blockers) or "-",
                    )
                )
    if examples_dir is not None:
        for path in sorted(Path(examples_dir).glob("*.py")):
            findings += scan_source_file(path)
            targets.append(f"example:{path}")
    findings = sort_findings(findings)
    counts = severity_counts(findings)
    headers = ("severity", "rule", "location", "message", "hint")
    rows = [finding.as_row() for finding in findings]
    if args.json:
        extra: dict[str, object] = {}
        if nfv_price is not None:
            extra["nfv"] = nfv_price.describe()
        if args.effects:
            extra["effects"] = effects_report
        if args.fusibility or args.effects:
            extra["fusibility"] = {
                "fused": fused,
                "fused_count": len(fused),
                "corpus_digest": corpus_digest(),
            }
        print(
            table_json(
                "check", headers, rows, counts=counts, targets=targets, **extra
            )
        )
        return 1 if counts["error"] else 0
    if args.fusibility and fusibility_rows:
        _print_rows(
            ("app", "proof", "engaged", "key_bits", "rewrite_bits", "digest",
             "blockers"),
            fusibility_rows,
        )
        print(
            f"{len(fused)}/{len(fusibility_rows)} applications fuse "
            f"(corpus digest {corpus_digest()})"
        )
        print()
    if args.effects and effects_report:
        for name, payload in effects_report.items():
            line_rate = payload["line_rate"]
            status = "sustains" if line_rate["sustained"] else "REJECTS"
            print(
                f"{name}: mode={payload['burst_mode']} "
                f"engaged={payload['engaged_mode'] or '-'} "
                f"key={payload['key_bits']}b rewrite={payload['rewrite_bits']}b "
                f"digest={payload['digest']}"
            )
            print(
                f"  line rate: {status} {line_rate['clock_mhz']} MHz × "
                f"{line_rate['datapath_bits']} b, worst frame "
                f"{line_rate['worst_frame']} B, "
                f"{line_rate['conflict_cycles']} conflict cycle(s)"
            )
            _print_rows(
                ("stage", "kind", "hdr r/w", "state r/w", "accesses", "time",
                 "commutes"),
                [
                    (
                        effect["stage"],
                        effect["kind"],
                        f"{effect['header_read_bits']}/{effect['header_write_bits']}",
                        f"{effect['state_read_bits']}/{effect['state_write_bits']}",
                        effect["table_accesses"],
                        "yes" if effect["reads_time"] else "-",
                        "yes" if effect["commutative"] else "no",
                    )
                    for effect in payload["effects"]
                ],
            )
            print()
    if nfv_price is not None:
        price = nfv_price.describe()
        print(
            f"nfv deployment: crossbar {price['crossbar']}, "
            f"{'fits' if price['fits'] else 'OVERFLOWS'} "
            f"(utilization {price['utilization']})"
        )
        for name, vec in price["per_tenant"].items():
            print(f"  tenant {name}: {vec}")
        print()
    if rows:
        _print_rows(headers, rows)
        print()
    print(
        f"checked {len(targets)} target(s): {counts['error']} error(s), "
        f"{counts['warning']} warning(s), {counts['info']} info"
    )
    return 1 if counts["error"] else 0


def cmd_metrics(args: argparse.Namespace) -> int:
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DeprecationWarning)
        # Inside the capture so explicit legacy-knob use is visible to
        # --fail-on-deprecated, the CI gate for stale spellings.
        spec = ScenarioSpec(
            kind=args.scenario,
            engine=_engine_from_args(args),
            fastpath=True if args.fastpath else None,
            batch_size=args.batch if args.batch else None,
            profile=args.profile,
        )
        run = spec.run()
        metrics = run.metrics()
    deprecated = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    if args.fail_on_deprecated and deprecated:
        for warning in deprecated:
            print(f"deprecated: {warning.message}", file=sys.stderr)
        print(
            f"error: {len(deprecated)} deprecated call(s) on the metrics path",
            file=sys.stderr,
        )
        return 3
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(metrics_json(metrics))
    elif fmt == "jsonl":
        print(metrics_jsonl(metrics))
    else:
        print(prometheus_text(metrics), end="")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    run = ScenarioSpec(
        kind=args.scenario,
        trace_packets=args.packets,
        engine=_engine_from_args(args),
        fastpath=True if args.fastpath else None,
        batch_size=args.batch if args.batch else None,
    ).run()
    tracer = run.tracer
    if args.json:
        print(json_document(SCHEMA_TRACE, spans=tracer.to_dicts()))
        return 0
    jsonl = tracer.to_jsonl()
    if jsonl:
        print(jsonl)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from dataclasses import replace as _replace

    from .config import get_settings
    from .parallel import SupervisorPolicy, load_journal, run_sharded

    if args.resume is not None:
        # The journal *is* the spec: resume re-runs exactly what the
        # interrupted campaign recorded, never what today's flags say.
        spec, _completed = load_journal(args.resume)
    else:
        spec = ScenarioSpec(
            kind=args.scenario,
            seed=args.seed,
            shards=args.shards,
            fault_plan=args.plan,
            engine=_engine_from_args(args),
            fastpath=True if args.fastpath else None,
            batch_size=args.batch if args.batch else None,
        )
    policy = None
    if args.shard_timeout is not None or args.max_retries is not None:
        policy = SupervisorPolicy.from_settings(get_settings())
        if args.shard_timeout is not None:
            policy = _replace(
                policy,
                shard_timeout_s=args.shard_timeout if args.shard_timeout > 0 else None,
            )
        if args.max_retries is not None:
            policy = _replace(policy, max_retries=args.max_retries)
    result = run_sharded(
        spec,
        workers=args.workers,
        start_method=args.start_method,
        policy=policy,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    if args.legacy_fleet:
        warn_deprecated(
            "flexsfp run --legacy-fleet (flexsfp.fleet/1 output)",
            "the flexsfp.run/1 artifact (default output)",
        )
        document = json_document(SCHEMA_FLEET, **result.to_dict())
    else:
        document = result.to_artifact().document()
    if args.out is not None:
        # Atomic: a run killed mid-write never leaves a truncated artifact.
        write_text_atomic(args.out, document + "\n")
    exit_code = 0 if result.ok else EXIT_PARTIAL
    if args.json:
        print(document)
        return exit_code
    print(
        f"{spec.kind} x{result.spec.shards} shard(s), {result.workers} worker(s), "
        f"seed={result.spec.seed} ({result.wall_s:.2f} s)"
    )
    _print_rows(
        ("shard", "seed", "digest"),
        [(s.index, s.seed, s.digest[:16]) for s in result.shards],
    )
    print()
    merged_rows = [(name, value) for name, value in result.merged_metrics.items()]
    if merged_rows:
        _print_rows(("merged metric", "value"), merged_rows)
    for name, state in result.merged_histograms.items():
        total = sum(state["counts"])
        print(f"histogram {name}: {total} samples across {len(state['bounds'])} buckets")
    completeness = result.completeness
    if completeness is not None:
        if completeness.resumed:
            print(
                f"resumed {len(completeness.resumed)} shard(s) from checkpoint: "
                f"{list(completeness.resumed)}"
            )
        if completeness.retries:
            print(f"supervisor retries: {completeness.retries}")
        if not completeness.ok:
            print(
                f"PARTIAL RESULT: {completeness.completed}/{completeness.shards} "
                f"shards completed; failed: {list(completeness.failed_indices)}"
            )
            for failure in completeness.failed:
                print(
                    f"  shard {failure.index} (seed {failure.seed}) gave up "
                    f"after {failure.attempts} attempt(s): "
                    f"{', '.join(failure.reasons)}"
                )
    if args.out is not None:
        print(f"wrote {args.out}")
    return exit_code


def cmd_matrix(args: argparse.Namespace) -> int:
    axes = MatrixAxes(
        engines=tuple(args.engines.split(",")) if args.engines else ("reference",),
        fastpath=parse_bool_axis(args.fastpath, "fastpath"),
        shards=parse_int_axis(args.shards, "shards"),
        workers=parse_int_axis(args.workers, "workers"),
        devices=parse_optional_axis(args.devices, "devices"),
        fault_plans=parse_optional_axis(args.fault_plans, "fault-plans"),
        batched_size=args.batched_size,
    )
    spec = ScenarioSpec(kind=args.scenario, seed=args.seed)
    progress = None
    if not args.json:
        total = axes.size()

        def progress(label: str, _counter=iter(range(1, total + 1))) -> None:
            print(f"[{next(_counter)}/{total}] {label}")

    result = run_matrix(
        spec,
        axes,
        baseline=args.baseline,
        start_method=args.start_method,
        progress=progress,
    )
    document = result.document()
    if args.out is not None:
        write_text_atomic(args.out, document + "\n")
    exit_code = 0
    if not result.ok:
        exit_code = EXIT_PARTIAL
    if result.diverged and args.fail_on_diverged:
        exit_code = EXIT_DIVERGED
    if args.json:
        print(document)
        return exit_code
    print()
    _print_rows(
        ("cell", "verdict", "semantic", "timing-only", "complete"),
        result.rows(),
    )
    counts = result.counts()
    print(
        f"\n{counts['cells']} cell(s) vs baseline [{result.baseline}]: "
        f"{counts['diverged']} diverged, {counts['partial']} partial "
        f"-> {result.verdict}"
    )
    for cell in result.diverged_cells:
        for entry in cell.diff.semantic_entries:
            print(
                f"  {cell.config.label}: {entry.kind.value} {entry.name}: "
                f"{entry.a!r} != {entry.b!r}"
            )
    if args.out is not None:
        print(f"wrote {args.out}")
    return exit_code


def cmd_diff(args: argparse.Namespace) -> int:
    a = load_artifact(args.a)
    b = load_artifact(args.b)
    diff = diff_artifacts(a, b)
    exit_code = EXIT_DIVERGED if diff.diverged else 0
    if args.json:
        print(json_document(SCHEMA_DIFF, **diff.to_dict()))
        return exit_code
    print(f"A: {args.a} ({a.source}, seed={a.seed}, spec={a.spec_digest[:12]})")
    print(f"B: {args.b} ({b.source}, seed={b.seed}, spec={b.spec_digest[:12]})")
    if diff.entries:
        _print_rows(
            ("kind", "field", "A", "B"),
            [
                (entry.kind.value, entry.name, entry.a, entry.b)
                for entry in diff.entries
            ],
        )
    for note in diff.notes:
        print(f"note: {note}")
    counts = diff.counts()
    semantic = sum(
        count for kind, count in counts.items() if kind != "timing-only"
    )
    print(
        f"verdict: {diff.verdict} "
        f"({semantic} semantic, {counts.get('timing-only', 0)} timing-only)"
    )
    return exit_code


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flexsfp", description="FlexSFP feasibility toolkit"
    )
    # Shared by every subcommand: swap the text renderer for one
    # canonical schema-tagged JSON document on stdout.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "apps", help="list deployable applications", parents=[common]
    ).set_defaults(func=cmd_apps)
    sub.add_parser(
        "devices", help="list the FPGA device catalog", parents=[common]
    ).set_defaults(func=cmd_devices)

    build = sub.add_parser(
        "build", help="build an application, print the report", parents=[common]
    )
    build.add_argument("app", choices=sorted(APP_FACTORIES))
    build.add_argument("--shell", choices=sorted(_SHELLS), default="one-way-filter")
    build.add_argument("--device", default="MPF200T")
    build.add_argument("--rate", type=float, default=10.0, help="line rate in Gbps")
    build.add_argument("--width", type=int, default=64, help="datapath bits")
    build.add_argument("--clock", type=float, default=None, help="PPE clock in MHz")
    build.add_argument("--soc", action="store_true", help="SoC-class control plane")
    build.add_argument(
        "--fastpath",
        action="store_true",
        help="include the flow-cache fast path in the build",
    )
    build.add_argument(
        "--cache-entries",
        type=int,
        default=4096,
        help="flow-cache entries (with --fastpath)",
    )
    build.set_defaults(func=cmd_build)

    t1 = sub.add_parser(
        "table1", help="reproduce the paper's Table 1", parents=[common]
    )
    t1.add_argument("--shell", default="one-way-filter")
    t1.add_argument("--rate", type=float, default=10.0)
    t1.add_argument("--width", type=int, default=64)
    t1.set_defaults(func=cmd_table1)
    sub.add_parser(
        "table2", help="reproduce the paper's Table 2", parents=[common]
    ).set_defaults(func=cmd_table2)
    t3 = sub.add_parser(
        "table3", help="reproduce the paper's Table 3", parents=[common]
    )
    t3.add_argument("--units", type=int, default=1_000)
    t3.set_defaults(func=cmd_table3)

    power = sub.add_parser(
        "power", help="the §5 power series for an app", parents=[common]
    )
    power.add_argument("--app", choices=sorted(APP_FACTORIES), default="nat")
    power.set_defaults(func=cmd_power)

    bom = sub.add_parser("bom", help="FlexSFP cost breakdown", parents=[common])
    bom.add_argument("--units", type=int, default=1_000)
    bom.set_defaults(func=cmd_bom)

    scale = sub.add_parser(
        "scale", help="plan an operating point for a line rate", parents=[common]
    )
    scale.add_argument("gbps", type=float)
    scale.set_defaults(func=cmd_scale)

    envelope = sub.add_parser(
        "envelope", help="check MSA power envelopes for a rate/app", parents=[common]
    )
    envelope.add_argument("gbps", type=float)
    envelope.add_argument("--app", choices=sorted(APP_FACTORIES), default="nat")
    envelope.add_argument("--width", type=int, default=64)
    envelope.add_argument("--clock", type=float, default=None, help="MHz")
    envelope.set_defaults(func=cmd_envelope)

    chaos = sub.add_parser(
        "chaos",
        help="replay a named fault plan through the chaos gauntlet",
        parents=[common],
    )
    chaos.add_argument("plan", choices=sorted(NAMED_PLANS))
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="engine tier (reference|batched|compiled); replaces "
        "--fastpath/--batch",
    )
    chaos.add_argument(
        "--fastpath", action="store_true", help="deprecated: use --engine"
    )
    chaos.add_argument(
        "--batch", type=int, default=0, help="deprecated: use --engine"
    )
    chaos.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the flexsfp.run/1 artifact to FILE (atomic)",
    )
    chaos.add_argument(
        "--legacy-table",
        action="store_true",
        dest="legacy_table",
        help="deprecated: emit the pre-run/1 flexsfp.table/1 JSON shape "
        "(with --json); removed in 2.0",
    )
    chaos.set_defaults(func=cmd_chaos)

    check = sub.add_parser(
        "check",
        help="static verification: IR rules, XDP analysis, determinism lint",
        parents=[common],
    )
    check.add_argument(
        "apps",
        nargs="*",
        metavar="APP",
        help="applications to verify (default: all, plus ./examples)",
    )
    check.add_argument(
        "--self",
        action="store_true",
        dest="self_lint",
        help="run the determinism linter over the repro source tree",
    )
    check.add_argument(
        "--examples",
        nargs="?",
        const="examples",
        default=None,
        metavar="DIR",
        help="scan a directory of example sources for XDP packet functions",
    )
    check.add_argument(
        "--effects",
        action="store_true",
        help="print the per-stage effect report and line-rate verdict",
    )
    check.add_argument(
        "--fusibility",
        action="store_true",
        help="print the derived fusibility proof per application",
    )
    check.add_argument(
        "--nfv",
        action="store_true",
        help="check a multi-tenant NFV deployment (crossbar + per-slot "
        "partitions priced against the device, per-tenant line rate)",
    )
    check.add_argument(
        "--tenants",
        default=None,
        metavar="FILE",
        help="JSON list of tenant specs for --nfv (default: the bundled "
        "scrub + telemetry pair)",
    )
    check.add_argument("--device", default="MPF200T")
    check.add_argument("--shell", choices=sorted(_SHELLS), default="one-way-filter")
    check.add_argument("--rate", type=float, default=10.0, help="line rate in Gbps")
    check.add_argument("--width", type=int, default=64, help="datapath bits")
    check.add_argument("--soc", action="store_true", help="SoC-class control plane")
    check.set_defaults(func=cmd_check)

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented scenario, export its metrics registry",
        parents=[common],
    )
    metrics.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default="nat-linerate"
    )
    metrics.add_argument(
        "--format",
        choices=("prom", "json", "jsonl"),
        default="prom",
        help="export format (--json forces json)",
    )
    metrics.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="engine tier (reference|batched|compiled); replaces "
        "--fastpath/--batch",
    )
    metrics.add_argument(
        "--fastpath", action="store_true", help="deprecated: use --engine"
    )
    metrics.add_argument(
        "--batch", type=int, default=0, help="deprecated: use --engine"
    )
    metrics.add_argument(
        "--profile",
        action="store_true",
        help="attach the event-loop profiler (sim.profile.* metrics)",
    )
    metrics.add_argument(
        "--fail-on-deprecated",
        action="store_true",
        dest="fail_on_deprecated",
        help="exit 3 if the scenario path emits any DeprecationWarning (CI gate)",
    )
    metrics.set_defaults(func=cmd_metrics)

    trace = sub.add_parser(
        "trace",
        help="per-packet stage spans through a scenario (JSON Lines)",
        parents=[common],
    )
    trace.add_argument(
        "--scenario", choices=sorted(SCENARIOS), default="nat-chain"
    )
    trace.add_argument(
        "--packets", type=int, default=4, help="number of packets to trace"
    )
    trace.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="engine tier (reference|batched|compiled); replaces "
        "--fastpath/--batch",
    )
    trace.add_argument(
        "--fastpath", action="store_true", help="deprecated: use --engine"
    )
    trace.add_argument(
        "--batch", type=int, default=0, help="deprecated: use --engine"
    )
    trace.set_defaults(func=cmd_trace)

    run = sub.add_parser(
        "run",
        help="sharded fleet-scale scenario run with merged metrics",
        parents=[common],
    )
    run.add_argument(
        "--scenario", choices=sorted(SCENARIO_KINDS), default="chaos"
    )
    run.add_argument("--shards", type=int, default=4, help="independent instances")
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: FLEXSFP_WORKERS, then 1)",
    )
    run.add_argument("--seed", type=int, default=1, help="root seed")
    run.add_argument(
        "--plan",
        choices=sorted(NAMED_PLANS),
        default=None,
        help="fault plan for the chaos scenario (default: smoke)",
    )
    run.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="engine tier (reference|batched|compiled); replaces "
        "--fastpath/--batch",
    )
    run.add_argument(
        "--fastpath", action="store_true", help="deprecated: use --engine"
    )
    run.add_argument(
        "--batch", type=int, default=0, help="deprecated: use --engine"
    )
    run.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        dest="start_method",
        help="multiprocessing start method (default: fork where available)",
    )
    run.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the flexsfp.run/1 artifact to FILE "
        "(atomic: temp file + rename)",
    )
    run.add_argument(
        "--legacy-fleet",
        action="store_true",
        dest="legacy_fleet",
        help="deprecated: emit the pre-run/1 flexsfp.fleet/1 document "
        "shape; removed in 2.0",
    )
    run.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        dest="shard_timeout",
        metavar="SECONDS",
        help="per-shard deadline; hung/straggling workers are killed and "
        "retried (0 disables; default: FLEXSFP_SHARD_TIMEOUT)",
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=None,
        dest="max_retries",
        metavar="N",
        help="retries per failed shard beyond the first attempt "
        "(default: FLEXSFP_MAX_RETRIES, then 2)",
    )
    run.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="journal each completed shard to FILE (flexsfp.journal/1 "
        "JSON Lines) so a killed run can be resumed",
    )
    run.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help="resume from a checkpoint journal: re-run only its missing/"
        "failed shards (the journalled spec wins over scenario flags) and "
        "keep journalling into the same file",
    )
    run.set_defaults(func=cmd_run)

    matrix = sub.add_parser(
        "matrix",
        help="sweep scenario axes, diff every cell against a baseline",
        parents=[common],
    )
    matrix.add_argument(
        "--scenario", choices=sorted(SCENARIO_KINDS), default="nat-linerate"
    )
    matrix.add_argument("--seed", type=int, default=1, help="root seed")
    matrix.add_argument(
        "--engines",
        default="reference",
        help="comma-separated engine axis: reference,batched,compiled",
    )
    matrix.add_argument(
        "--fastpath",
        default="off",
        help="comma-separated fastpath axis: on,off",
    )
    matrix.add_argument(
        "--shards", default="1", help="comma-separated shard-count axis: 1,4"
    )
    matrix.add_argument(
        "--workers", default="1", help="comma-separated worker-count axis"
    )
    matrix.add_argument(
        "--devices",
        default="none",
        help="comma-separated device axis ('none' keeps the base spec)",
    )
    matrix.add_argument(
        "--fault-plans",
        default="none",
        dest="fault_plans",
        help="comma-separated fault-plan axis ('none' keeps the base spec)",
    )
    matrix.add_argument(
        "--baseline",
        type=int,
        default=0,
        help="index of the baseline cell in axis-major order (default: 0)",
    )
    matrix.add_argument(
        "--batched-size",
        type=int,
        default=16,
        dest="batched_size",
        help="batch size the 'batched' engine cells run (default: 16)",
    )
    matrix.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        dest="start_method",
        help="multiprocessing start method for multi-worker cells",
    )
    matrix.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the merged flexsfp.matrix/1 document to FILE (atomic)",
    )
    matrix.add_argument(
        "--fail-on-diverged",
        action="store_true",
        dest="fail_on_diverged",
        help=f"exit {EXIT_DIVERGED} if any cell diverges semantically "
        "from the baseline (CI gate)",
    )
    matrix.set_defaults(func=cmd_matrix)

    diff = sub.add_parser(
        "diff",
        help="compare two saved flexsfp.run/1 artifacts",
        parents=[common],
    )
    diff.add_argument("a", metavar="A.json", help="baseline artifact")
    diff.add_argument("b", metavar="B.json", help="candidate artifact")
    diff.set_defaults(func=cmd_diff)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
