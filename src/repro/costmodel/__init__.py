"""Cost/power economics: BOM, comparables, ideal-scaling normalization."""

from .bom import FLEXSFP_BOM, BomItem, FlexSfpBom
from .comparables import (
    DPU_BF2,
    FPGA_NIC,
    MANY_CORE,
    Solution,
    capex_saving_vs,
    flexsfp_solution,
    power_reduction_vs,
    table3_rows,
)
from .scaling import SLICE_GBPS, per_10g, per_10g_band, slices

__all__ = [
    "BomItem",
    "DPU_BF2",
    "FLEXSFP_BOM",
    "FPGA_NIC",
    "FlexSfpBom",
    "MANY_CORE",
    "SLICE_GBPS",
    "Solution",
    "capex_saving_vs",
    "flexsfp_solution",
    "per_10g",
    "per_10g_band",
    "power_reduction_vs",
    "slices",
    "table3_rows",
]
