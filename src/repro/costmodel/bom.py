r"""FlexSFP bill of materials (§5.2 cost breakdown).

The paper derives a direct production cost of ~$300/unit (falling toward
$250 at volume) from: the MPF200T FPGA (~$200 @1k units), a commodity
10GBASE-SR optical sub-assembly (~$10), and $50–100 of remaining
components and manufacturing.  This module encodes that breakdown as data
so the Table 3 normalization and the volume-sensitivity ablation both
compute from the same source.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class BomItem:
    """One BOM line: a unit-cost band and a volume learning rate.

    ``learning_rate`` is the classic cost multiplier per doubling of
    volume (0.9 ⇒ 10 % cheaper each doubling), applied from the 1k-unit
    reference point.
    """

    name: str
    cost_low_usd: float
    cost_high_usd: float
    learning_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.cost_low_usd < 0 or self.cost_high_usd < self.cost_low_usd:
            raise ConfigError(f"bad cost band for {self.name!r}")
        if not 0.5 <= self.learning_rate <= 1.0:
            raise ConfigError(f"implausible learning rate for {self.name!r}")

    def at_volume(self, units: int, reference_units: int = 1_000) -> tuple[float, float]:
        """Cost band at ``units`` production volume."""
        if units <= 0:
            raise ConfigError("volume must be positive")
        doublings = max(0.0, math.log2(units / reference_units))
        factor = self.learning_rate**doublings
        return self.cost_low_usd * factor, self.cost_high_usd * factor


# The prototype's BOM (paper §5.2).
FLEXSFP_BOM: tuple[BomItem, ...] = (
    BomItem("MPF200T FPGA", 185.0, 200.0, learning_rate=0.95),
    BomItem("10GBASE-SR optics", 8.0, 10.0, learning_rate=0.92),
    BomItem("laser driver + limiting amp", 8.0, 15.0, learning_rate=0.93),
    BomItem("voltage regulators", 4.0, 8.0, learning_rate=0.95),
    BomItem("reference oscillator", 3.0, 6.0, learning_rate=0.95),
    BomItem("SPI flash (128 Mb)", 2.0, 4.0, learning_rate=0.95),
    BomItem("6-layer PCB", 8.0, 15.0, learning_rate=0.9),
    BomItem("assembly/reflow/inspection/test", 25.0, 45.0, learning_rate=0.9),
)


class FlexSfpBom:
    """Aggregate view over the FlexSFP BOM."""

    def __init__(self, items: tuple[BomItem, ...] = FLEXSFP_BOM) -> None:
        if not items:
            raise ConfigError("empty BOM")
        self.items = items

    def total_range(self, units: int = 1_000) -> tuple[float, float]:
        """Direct production cost band at the given volume."""
        low = high = 0.0
        for item in self.items:
            item_low, item_high = item.at_volume(units)
            low += item_low
            high += item_high
        return low, high

    def dominant_item(self) -> BomItem:
        """The largest cost driver (the paper: "the FPGA")."""
        return max(self.items, key=lambda item: item.cost_high_usd)

    def breakdown(self, units: int = 1_000) -> list[dict[str, object]]:
        rows = []
        total_low, total_high = self.total_range(units)
        for item in self.items:
            low, high = item.at_volume(units)
            rows.append(
                {
                    "item": item.name,
                    "low_usd": round(low, 2),
                    "high_usd": round(high, 2),
                    "share_of_high": round(high / total_high, 3),
                }
            )
        return rows
