"""The ideal-scaling normalization of Sadok et al. (HotNets '23) [39].

Heterogeneous acceleration hardware is only comparable after normalizing
capital cost and power to a common capacity slice; the paper (and its
Table 3) normalizes to a 10 Gb/s slice under the *ideal-scaling* rule:
divide the raw figure by the device's aggregate line capacity expressed in
10 G units, i.e. assume the device can be perfectly time/space-shared.
"""

from __future__ import annotations

from ..errors import ConfigError

SLICE_GBPS = 10.0


def slices(capacity_gbps: float) -> float:
    """How many ideal 10 G slices a device offers."""
    if capacity_gbps <= 0:
        raise ConfigError("capacity must be positive")
    return capacity_gbps / SLICE_GBPS


def per_10g(value: float, capacity_gbps: float) -> float:
    """Ideal-scaled value per 10 G slice."""
    return value / slices(capacity_gbps)


def per_10g_band(
    low: float, high: float, capacity_gbps: float
) -> tuple[float, float]:
    """Ideal-scale a [low, high] band at fixed capacity."""
    if high < low:
        raise ConfigError("band is inverted")
    return per_10g(low, capacity_gbps), per_10g(high, capacity_gbps)
