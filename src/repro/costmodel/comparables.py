"""Comparable acceleration solutions and the Table 3 normalization.

Each :class:`Solution` carries the raw cost/power figures the paper quotes
from vendor/reseller listings, plus the aggregate capacities used for the
ideal-scaling normalization.  The paper's Table 3 classes mix SKUs (e.g.
"Many-core (Ag./DSC)" takes its cost band from Agilio-class pricing and
its power point from the DSC-25), so cost and power may normalize against
different capacities; both are recorded explicitly.

The FlexSFP row is *derived*, not quoted: its cost band comes from the BOM
model and its power from the testbed power model, keeping the whole table
reproducible from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .bom import FlexSfpBom
from .scaling import per_10g, per_10g_band


@dataclass(frozen=True)
class Solution:
    """One Table 3 row."""

    name: str
    cost_low_usd: float
    cost_high_usd: float
    power_w: float
    cost_capacity_gbps: float  # capacity used to normalize cost
    power_capacity_gbps: float  # capacity used to normalize power
    note: str = ""

    def __post_init__(self) -> None:
        if self.cost_high_usd < self.cost_low_usd:
            raise ConfigError(f"inverted cost band for {self.name!r}")

    def cost_per_10g(self) -> tuple[float, float]:
        return per_10g_band(
            self.cost_low_usd, self.cost_high_usd, self.cost_capacity_gbps
        )

    def power_per_10g(self) -> float:
        return per_10g(self.power_w, self.power_capacity_gbps)

    def row(self) -> dict[str, object]:
        cost_lo, cost_hi = self.cost_per_10g()
        return {
            "solution": self.name,
            "raw_usd": (self.cost_low_usd, self.cost_high_usd),
            "raw_w": self.power_w,
            "usd_per_10g": (round(cost_lo, 1), round(cost_hi, 1)),
            "w_per_10g": round(self.power_per_10g(), 2),
        }


# Raw figures as quoted in §5.2 / Table 3 (reseller pricing, board power).
DPU_BF2 = Solution(
    name="DPU (BF-2)",
    cost_low_usd=1_500.0,
    cost_high_usd=2_000.0,
    power_w=75.0,
    cost_capacity_gbps=50.0,  # 2×25G BlueField-2 SKU
    power_capacity_gbps=50.0,
    note="NVIDIA BlueField-2, 2x25G SKU",
)

MANY_CORE = Solution(
    name="Many-core (Ag./DSC)",
    cost_low_usd=800.0,
    cost_high_usd=1_200.0,
    power_w=25.0,
    cost_capacity_gbps=80.0,  # Agilio CX 2x40G pricing basis
    power_capacity_gbps=50.0,  # Pensando DSC-25 power basis
    note="Agilio-class cost band; DSC-25 power point",
)

FPGA_NIC = Solution(
    name="FPGA (U25/U50)",
    cost_low_usd=2_000.0,
    cost_high_usd=2_600.0,
    power_w=75.0,
    cost_capacity_gbps=75.0,  # blended U25 (50G) / U50 (100G)
    power_capacity_gbps=100.0,  # U50 at 100G (U25: 45 W / 50G ≈ 9 W)
    note="paper quotes >2k$, 45-75 W, 7-10 W/10G",
)


def flexsfp_solution(
    units: int = 1_000, power_w: float | None = None
) -> Solution:
    """Derive the FlexSFP row from the BOM and power models."""
    low, high = FlexSfpBom().total_range(units)
    if power_w is None:
        from ..testbed.power import FLEXSFP_TOTAL_W  # deferred import

        power_w = FLEXSFP_TOTAL_W
    return Solution(
        name="FlexSFP",
        cost_low_usd=low,
        cost_high_usd=high,
        power_w=power_w,
        cost_capacity_gbps=10.0,
        power_capacity_gbps=10.0,
        note="derived from BOM + power model",
    )


def table3_rows(units: int = 1_000) -> list[dict[str, object]]:
    """All Table 3 rows, comparators quoted + FlexSFP derived."""
    solutions = [DPU_BF2, MANY_CORE, FPGA_NIC, flexsfp_solution(units)]
    return [solution.row() for solution in solutions]


def capex_saving_vs(other: Solution, units: int = 1_000) -> float:
    """Fractional per-port CAPEX saving of FlexSFP vs ``other`` (midpoints).

    For "lightweight edge workloads" a port needs one unit of *something*;
    the paper's "roughly two-thirds CAPEX saving" compares raw unit costs
    (FlexSFP ~$275 vs a many-core SmartNIC ~$1 000), while per-10G the
    SmartNICs amortize better — that asymmetry is the whole Table 3 story.
    """
    flex = flexsfp_solution(units)
    flex_mid = (flex.cost_low_usd + flex.cost_high_usd) / 2
    other_mid = (other.cost_low_usd + other.cost_high_usd) / 2
    return 1.0 - flex_mid / other_mid if other_mid else 0.0


def power_reduction_vs(other: Solution, units: int = 1_000) -> float:
    """Per-10G power reduction factor of FlexSFP vs ``other``.

    The paper claims an order of magnitude against the DPU class
    (15 W/10G → 1.5 W/10G).
    """
    flex = flexsfp_solution(units)
    flex_w = flex.power_per_10g()
    return other.power_per_10g() / flex_w if flex_w else 0.0
