"""A legacy fixed-function L2 switch with pluggable SFP cages.

This is the retrofit substrate of §2.1: "thousands of legacy aggregation
switches … lack programmability, telemetry, and in-line enforcement".  The
switch itself is a plain MAC-learning forwarder with no hooks; every port
ends in an SFP cage.  Inserting a :class:`FlexSFPModule` into a cage puts
programmable logic *between* the switch ASIC and the outside world —
without touching the switch's forwarding logic, exactly the paper's
drop-in upgrade story.
"""

from __future__ import annotations

from .._util import warn_deprecated
from ..core.module import FlexSFPModule
from ..errors import ConfigError, SimulationError
from ..packet import Packet
from ..sim.engine import Simulator
from ..sim.link import Port
from ..sim.stats import Counter

SWITCH_PIPELINE_LATENCY_S = 600e-9  # typical 1U aggregation ASIC
DEFAULT_MAC_TABLE_SIZE = 16_384


class SfpCage:
    """One switch port's cage: empty (plain SFP) or holding a FlexSFP.

    ``asic_port`` faces the switch forwarding logic; :attr:`external_port`
    is what the outside cable plugs into.  With a FlexSFP inserted, the
    module's edge connector mates with the ASIC side and its optical side
    becomes the external port.
    """

    def __init__(self, sim: Simulator, name: str, rate_bps: float) -> None:
        self.sim = sim
        self.name = name
        self.asic_port = Port(sim, f"{name}.asic", rate_bps=rate_bps)
        self.module: FlexSFPModule | None = None

    @property
    def external_port(self) -> Port:
        return self.module.line_port if self.module is not None else self.asic_port

    def insert_flexsfp(self, module: FlexSFPModule) -> None:
        """Seat a FlexSFP in the cage (cage must be empty and unplugged)."""
        if self.module is not None:
            raise ConfigError(f"cage {self.name} already holds {self.module.name}")
        if self.asic_port.connected:
            raise SimulationError(
                f"unplug the external cable from {self.name} before inserting"
            )
        self.module = module
        self.asic_port.connect(module.edge_port)

    def remove_module(self) -> FlexSFPModule | None:
        """Pull the module (its links are torn down)."""
        module = self.module
        if module is not None:
            self.asic_port.disconnect()
            module.edge_port.disconnect()
            module.line_port.disconnect()
            self.module = None
        return module


class LegacySwitch:
    """Fixed-function MAC-learning switch; no programmability inside."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_ports: int = 8,
        rate_bps: float = 10e9,
        mac_table_size: int = DEFAULT_MAC_TABLE_SIZE,
    ) -> None:
        if num_ports < 2:
            raise ConfigError("a switch needs at least two ports")
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.mac_table_size = mac_table_size
        self.cages = [
            SfpCage(sim, f"{name}.p{i}", rate_bps) for i in range(num_ports)
        ]
        for index, cage in enumerate(self.cages):
            cage.asic_port.attach(self._make_rx(index))
        self._mac_table: dict[int, int] = {}
        self.forwarded = Counter(f"{name}.forwarded")
        self.flooded = Counter(f"{name}.flooded")
        self.filtered = Counter(f"{name}.filtered")

    @property
    def num_ports(self) -> int:
        return len(self.cages)

    def external_port(self, index: int) -> Port:
        """The port an outside cable plugs into (through the cage)."""
        return self.cages[index].external_port

    def insert_flexsfp(self, index: int, module: FlexSFPModule) -> None:
        self.cages[index].insert_flexsfp(module)

    def _make_rx(self, index: int):
        def _rx(port: Port, packet: Packet) -> None:
            self._forward(index, packet)

        return _rx

    def _forward(self, ingress: int, packet: Packet) -> None:
        eth = packet.eth
        if eth is None:
            self.filtered.count(packet.wire_len)
            return
        self._learn(eth.src, ingress)
        egress = self._mac_table.get(eth.dst)
        if eth.is_broadcast or eth.is_multicast or egress is None:
            self.flooded.count(packet.wire_len)
            for index, cage in enumerate(self.cages):
                if index != ingress:
                    self.sim.schedule(
                        SWITCH_PIPELINE_LATENCY_S,
                        cage.asic_port.send,
                        packet.copy(),
                    )
            return
        if egress == ingress:
            self.filtered.count(packet.wire_len)
            return
        self.forwarded.count(packet.wire_len)
        self.sim.schedule(
            SWITCH_PIPELINE_LATENCY_S, self.cages[egress].asic_port.send, packet
        )

    def _learn(self, mac: int, port_index: int) -> None:
        if mac in self._mac_table or len(self._mac_table) < self.mac_table_size:
            self._mac_table[mac] = port_index

    def mac_table(self) -> dict[int, int]:
        return dict(self._mac_table)

    def snapshot(self) -> dict[str, object]:
        """Structured counter snapshot (stable legacy dict layout)."""
        return {
            "forwarded": self.forwarded.snapshot(),
            "flooded": self.flooded.snapshot(),
            "filtered": self.filtered.snapshot(),
            "mac_entries": len(self._mac_table),
            "flexsfp_ports": [
                i for i, cage in enumerate(self.cages) if cage.module is not None
            ],
        }

    def stats(self) -> dict[str, object]:
        """Deprecated alias for :meth:`snapshot`."""
        warn_deprecated("LegacySwitch.stats()", "LegacySwitch.snapshot()")
        return self.snapshot()

    def metric_values(self) -> dict[str, object]:
        """Flat :class:`~repro.obs.registry.MetricSource` view."""
        values: dict[str, object] = {}
        for group, counter in (
            ("forwarded", self.forwarded),
            ("flooded", self.flooded),
            ("filtered", self.filtered),
        ):
            for key, value in counter.metric_values().items():
                values[f"{group}.{key}"] = value
        values["mac_entries"] = len(self._mac_table)
        values["flexsfp_ports"] = sum(
            1 for cage in self.cages if cage.module is not None
        )
        return values

    def register_metrics(self, registry) -> None:
        """Publish the switch and every seated module into a registry."""
        registry.register(self.name, self)
        for cage in self.cages:
            if cage.module is not None:
                cage.module.register_metrics(registry)
