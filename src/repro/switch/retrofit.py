"""Retrofit planning: turning a legacy switch into an intelligent edge node.

Implements the §2.1 deployment story: pick per-port policies (per-subscriber
filtering, rate limiting, telemetry, tagging), build one FlexSFP per port,
seat them in the cages, and report the upgrade's resource/cost/power bill —
all without touching the switch model itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import warn_deprecated
from ..apps import create_app
from ..core.module import FlexSFPModule
from ..core.shells import ShellKind, ShellSpec
from ..engine import EngineConfig
from ..errors import ConfigError
from ..nfv import Deployment
from ..sim.engine import Simulator
from .legacy import LegacySwitch


@dataclass
class PortPolicy:
    """What one subscriber/uplink port should enforce."""

    app_name: str
    app_params: dict = field(default_factory=dict)
    shell_kind: ShellKind = ShellKind.TWO_WAY_CORE
    configure: object | None = None  # callable(app) for rules/mappings

    def build_app(self):
        app = create_app(self.app_name, self.app_params)
        if self.configure is not None:
            self.configure(app)
        return app


@dataclass
class RetrofitPlan:
    """Port index → policy for one switch."""

    policies: dict[int, PortPolicy] = field(default_factory=dict)

    def assign(self, port: int, policy: PortPolicy) -> None:
        if port in self.policies:
            raise ConfigError(f"port {port} already has a policy")
        self.policies[port] = policy


@dataclass
class RetrofitResult:
    """The modules deployed by :func:`apply_retrofit`."""

    modules: dict[int, FlexSFPModule]

    def module_at(self, port: int) -> FlexSFPModule:
        return self.modules[port]

    def total_added_power_w(self, per_module_w: float = 1.52) -> float:
        """First-order power bill of the upgrade (per-module FlexSFP draw)."""
        return per_module_w * len(self.modules)

    def snapshot(self) -> dict[int, dict]:
        """Per-port module snapshots (stable legacy dict layout)."""
        return {port: module.snapshot() for port, module in self.modules.items()}

    def stats(self) -> dict[int, dict]:
        """Deprecated alias for :meth:`snapshot`."""
        warn_deprecated("RetrofitResult.stats()", "RetrofitResult.snapshot()")
        return self.snapshot()

    def register_metrics(self, registry) -> None:
        """Publish every deployed module into a registry."""
        for module in self.modules.values():
            module.register_metrics(registry)


def apply_retrofit(
    sim: Simulator,
    switch: LegacySwitch,
    plan: RetrofitPlan,
    auth_key: bytes = b"flexsfp-mgmt-key",
    fastpath: bool | None = None,
    batch_size: int | None = None,
    engine: "EngineConfig | str | None" = None,
) -> RetrofitResult:
    """Build and seat one FlexSFP per planned port.

    Ports must not have external cables connected yet (modules go into the
    cages first, then cables plug into the modules' optical sides).
    ``engine`` (an :class:`~repro.engine.EngineConfig` or tier name) is
    forwarded to every module; the legacy ``fastpath``/``batch_size``
    knobs survive for callers that have not migrated (None keeps the
    :class:`~repro.config.Settings` environment defaults) but conflict
    with an explicit ``engine``.
    """
    modules: dict[int, FlexSFPModule] = {}
    for port_index, policy in sorted(plan.policies.items()):
        if not 0 <= port_index < switch.num_ports:
            raise ConfigError(
                f"port {port_index} out of range for {switch.num_ports}-port switch"
            )
        app = policy.build_app()
        shell = ShellSpec(kind=policy.shell_kind, line_rate_bps=switch.rate_bps)
        module = FlexSFPModule(
            sim,
            f"{switch.name}.sfp{port_index}",
            Deployment.solo(app),
            shell=shell,
            auth_key=auth_key,
            device_id=port_index,
            # Unique per-port management address so a fleet controller can
            # target each module individually through the switch.
            mgmt_mac=f"02:f5:f9:00:01:{port_index + 1:02x}",
            fastpath=fastpath,
            batch_size=batch_size,
            engine=engine,
        )
        switch.insert_flexsfp(port_index, module)
        modules[port_index] = module
    return RetrofitResult(modules=modules)
