"""Legacy switch, hosts, and the FlexSFP retrofit machinery."""

from .host import Host
from .legacy import (
    DEFAULT_MAC_TABLE_SIZE,
    SWITCH_PIPELINE_LATENCY_S,
    LegacySwitch,
    SfpCage,
)
from .retrofit import PortPolicy, RetrofitPlan, RetrofitResult, apply_retrofit

__all__ = [
    "DEFAULT_MAC_TABLE_SIZE",
    "Host",
    "LegacySwitch",
    "PortPolicy",
    "RetrofitPlan",
    "RetrofitResult",
    "SWITCH_PIPELINE_LATENCY_S",
    "SfpCage",
    "apply_retrofit",
]
