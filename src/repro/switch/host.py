"""Host endpoints: simple traffic sources/sinks with one NIC port."""

from __future__ import annotations

from typing import Callable

from .._util import mac_to_int
from ..packet import Packet
from ..sim.engine import Simulator
from ..sim.link import Port
from ..sim.stats import RateMeter


class Host:
    """A host with a single NIC port.

    Received packets are recorded (bounded by ``keep_last``) and measured
    by a :class:`RateMeter`; an optional handler can implement protocol
    behaviour (echo servers, collectors, …).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: str | int = 0,
        ip: str = "0.0.0.0",
        rate_bps: float = 10e9,
        keep_last: int = 4096,
    ) -> None:
        self.sim = sim
        self.name = name
        self.mac = mac_to_int(mac) if mac else 0
        self.ip = ip
        self.keep_last = keep_last
        self.port = Port(sim, f"{name}.nic", rate_bps=rate_bps)
        self.port.attach(self._on_rx)
        self.received: list[Packet] = []
        self.rx_meter = RateMeter(f"{name}.rx")
        self.handler: Callable[[Packet], None] | None = None

    def _on_rx(self, port: Port, packet: Packet) -> None:
        self.rx_meter.observe(self.sim.now, packet.wire_len)
        self.received.append(packet)
        if len(self.received) > self.keep_last:
            del self.received[: -self.keep_last]
        if self.handler is not None:
            self.handler(packet)

    def send(self, packet: Packet) -> bool:
        """Transmit one packet out the NIC."""
        return self.port.send(packet)

    @property
    def rx_packets(self) -> int:
        return self.rx_meter.total_packets

    @property
    def rx_bytes(self) -> int:
        return self.rx_meter.total_bytes

    def clear(self) -> None:
        self.received.clear()

    def metric_values(self) -> dict[str, float]:
        """Flat :class:`~repro.obs.registry.MetricSource` view."""
        values: dict[str, float] = {}
        for key, value in self.rx_meter.metric_values().items():
            values[f"rx.{key}"] = value
        for key, value in self.port.metric_values().items():
            values[f"nic.{key}"] = value
        return values
