"""Fleet orchestration: centralized control of many FlexSFPs (§4.1).

"[A network-accessible control interface] is essential for centralized
orchestration across a fleet of FlexSFPs, while preserving the
independence of per-port behavior."

:class:`FleetController` is that orchestrator: it speaks the management
protocol over a simulated network port, matches replies to requests by
sequence number, discovers modules via broadcast HELLO, reads/writes
their tables and counters, streams signed bitstreams, and performs
*rolling upgrades* — one module at a time, verifying each comes back
with the new application before touching the next.

Everything is event-driven: operations take completion callbacks and the
controller enforces per-request timeouts.  The management network is not
assumed reliable: every tracked request is retried with exponential
backoff plus seeded jitter (each attempt uses a fresh sequence number,
so a delayed original is NAK'd by replay protection rather than
double-applied), discovery re-broadcasts its HELLO across the window,
and rolling upgrades health-probe each module after the reboot — a
module that comes back wrong or degraded is rolled back to its previous
boot slot.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable

from ._util import int_to_mac
from .core.mgmt import MgmtMessage, MgmtOp, chunk_body, mgmt_frame
from .errors import ControlPlaneError
from .fpga.bitstream import Bitstream
from .packet import Packet
from .sim.engine import EventHandle, Simulator
from .sim.link import Port
from .sim.stats import Counter

BROADCAST = "ff:ff:ff:ff:ff:ff"
DEFAULT_TIMEOUT_S = 20e-3
DEFAULT_MAX_RETRIES = 2
DEFAULT_BACKOFF_BASE_S = 1e-3
DEFAULT_BACKOFF_JITTER = 0.5
DEFAULT_DISCOVERY_REPEATS = 3
CHUNK_BYTES = 1024

ReplyCallback = Callable[[dict | None], None]
"""Receives the reply's JSON body, or None when every attempt timed out."""

MessageFactory = Callable[[], MgmtMessage]
"""Builds a fresh (new-sequence-number) message for each send attempt."""


@dataclass
class ModuleInfo:
    """What discovery learned about one module."""

    mac: str
    app: str
    device: str
    shell: str
    boot_slot: int
    tables: list[str] = field(default_factory=list)
    degraded: bool = False


@dataclass
class UpgradeReport:
    """Outcome of a rolling upgrade."""

    upgraded: list[str] = field(default_factory=list)
    failed: list[tuple[str, str]] = field(default_factory=list)  # (mac, reason)
    rolled_back: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed


class _Pending:
    __slots__ = ("callback", "timer")

    def __init__(self, callback: ReplyCallback, timer: EventHandle) -> None:
        self.callback = callback
        self.timer = timer


class FleetController:
    """The management-plane orchestrator."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "fleet",
        auth_key: bytes = b"flexsfp-mgmt-key",
        mac: str | int = "02:0c:00:00:00:0f",
        rate_bps: float = 1e9,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_jitter: float = DEFAULT_BACKOFF_JITTER,
        retry_seed: int = 1,
    ) -> None:
        self.sim = sim
        self.name = name
        self.auth_key = auth_key
        self.mac = mac
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_jitter = backoff_jitter
        self._retry_rng = random.Random(retry_seed)
        self.port = Port(sim, f"{name}.mgmt", rate_bps=rate_bps)
        self.port.attach(self._on_rx)
        self._seq = 0
        self._pending: dict[int, _Pending] = {}
        self._discovered: dict[str, ModuleInfo] = {}
        self._discovering = False
        self.timeouts = Counter(f"{name}.timeouts")  # requests abandoned
        self.retries = Counter(f"{name}.retries")  # individual resends
        self.naks = Counter(f"{name}.naks")

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metric_values(self) -> dict[str, int]:
        """Flat :class:`~repro.obs.registry.MetricSource` view."""
        return {
            "timeouts.packets": self.timeouts.packets,
            "retries.packets": self.retries.packets,
            "naks.packets": self.naks.packets,
            "pending": len(self._pending),
            "discovered": len(self._discovered),
            "seq": self._seq,
        }

    def register_metrics(self, registry) -> None:
        """Publish the controller and its port into a ``MetricsRegistry``."""
        registry.register(self.name, self)
        registry.register(f"{self.name}.port", self.port)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _send_once(
        self,
        dst_mac: str | int,
        message: MgmtMessage,
        on_reply: ReplyCallback | None,
        track: bool = True,
    ) -> None:
        """One attempt: frame, arm the timeout, transmit. No retries."""
        frame = mgmt_frame(message, self.auth_key, self.mac, dst_mac)
        if track and on_reply is not None:
            timer = self.sim.schedule(self.timeout_s, self._timeout, message.seq)
            self._pending[message.seq] = _Pending(on_reply, timer)
        self.port.send(frame)

    def _request(
        self,
        dst_mac: str | int,
        make_message: MessageFactory,
        on_reply: ReplyCallback,
        retries: int | None = None,
    ) -> None:
        """Send with bounded retries, exponential backoff, and jitter.

        ``make_message`` is invoked per attempt so every retransmission
        carries a fresh sequence number — required because the original
        may have been *received* with only its reply lost, and the module
        replay-rejects reused sequence numbers.
        """
        budget = self.max_retries if retries is None else retries

        def attempt(used: int) -> None:
            def handle(body: dict | None) -> None:
                if body is not None or used >= budget:
                    if body is None:
                        self.timeouts.count()
                    on_reply(body)
                    return
                self.retries.count()
                backoff = self.backoff_base_s * (2**used) * (
                    1.0 + self.backoff_jitter * self._retry_rng.random()
                )
                self.sim.schedule(backoff, attempt, used + 1)

            self._send_once(dst_mac, make_message(), handle)

        attempt(0)

    def _timeout(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is not None:
            pending.callback(None)

    def _on_rx(self, port: Port, packet: Packet) -> None:
        try:
            message = MgmtMessage.unpack(packet.payload, self.auth_key)
        except ControlPlaneError:
            return  # corrupt or foreign frame; the timeout will handle it
        if message.opcode not in (MgmtOp.ACK, MgmtOp.NAK):
            return
        body = message.json_body()
        if message.opcode is MgmtOp.NAK:
            self.naks.count()
        if self._discovering and body.get("ok") and "app" in body and "device" in body:
            eth = packet.eth
            mac = int_to_mac(eth.src) if eth is not None else "?"
            self._discovered[mac] = ModuleInfo(
                mac=mac,
                app=str(body["app"]),
                device=str(body["device"]),
                shell=str(body.get("shell", "")),
                boot_slot=int(body.get("boot_slot", 0)),
                tables=list(body.get("tables", [])),
                degraded=bool(body.get("degraded", False)),
            )
        pending = self._pending.pop(message.seq, None)
        if pending is not None:
            pending.timer.cancel()
            pending.callback(body)

    # ------------------------------------------------------------------
    # Basic operations
    # ------------------------------------------------------------------
    def hello(self, mac: str | int, on_reply: ReplyCallback) -> None:
        self._request(
            mac,
            lambda: MgmtMessage.control(MgmtOp.HELLO, self._next_seq()),
            on_reply,
        )

    def discover(
        self,
        window_s: float,
        on_done: Callable[[dict[str, ModuleInfo]], None],
        repeats: int = DEFAULT_DISCOVERY_REPEATS,
    ) -> None:
        """Broadcast HELLO; after ``window_s``, report every responder.

        The HELLO is re-broadcast ``repeats`` times across the window so a
        lossy management network still yields a complete census (replies
        are deduplicated by source MAC).
        """
        self._discovered = {}
        self._discovering = True

        def fire() -> None:
            # Built at fire time so sequence numbers stay monotonic even
            # when unicast requests interleave with the re-broadcasts.
            self._send_once(
                BROADCAST,
                MgmtMessage.control(MgmtOp.HELLO, self._next_seq()),
                None,
                track=False,
            )

        interval = window_s / (repeats + 1)
        for index in range(max(1, repeats)):
            self.sim.schedule(index * interval, fire)

        def finish() -> None:
            self._discovering = False
            on_done(dict(self._discovered))

        self.sim.schedule(window_s, finish)

    def table_add(
        self, mac: str | int, table: str, key, value, on_reply: ReplyCallback
    ) -> None:
        self._request(
            mac,
            lambda: MgmtMessage.control(
                MgmtOp.TABLE_ADD, self._next_seq(), table=table, key=key, value=value
            ),
            on_reply,
        )

    def counter_read(self, mac: str | int, on_reply: ReplyCallback) -> None:
        self._request(
            mac,
            lambda: MgmtMessage.control(MgmtOp.COUNTER_READ, self._next_seq()),
            on_reply,
        )

    def boot_select(self, mac: str | int, slot: int, on_reply: ReplyCallback) -> None:
        self._request(
            mac,
            lambda: MgmtMessage.control(MgmtOp.BOOT_SELECT, self._next_seq(), slot=slot),
            on_reply,
        )

    def reboot(self, mac: str | int, on_reply: ReplyCallback) -> None:
        self._request(
            mac,
            lambda: MgmtMessage.control(MgmtOp.REBOOT, self._next_seq()),
            on_reply,
        )

    # ------------------------------------------------------------------
    # Bitstream deployment
    # ------------------------------------------------------------------
    def deploy(
        self,
        mac: str | int,
        bitstream: Bitstream,
        slot: int,
        on_done: Callable[[bool, str], None],
        deploy_key: bytes | None = None,
        reboot: bool = True,
    ) -> None:
        """Stream a bitstream into ``slot``; optionally boot into it.

        ``on_done(ok, reason)`` fires after the commit (and, with
        ``reboot``, after BOOT_SELECT + REBOOT are acknowledged).  Every
        step rides the retry transport, so a lossy management link slows
        a deployment down rather than failing it.
        """
        image = bitstream.to_bytes()
        signature = bitstream.sign(
            deploy_key if deploy_key is not None else self.auth_key
        ).hex()
        offsets = list(range(0, len(image), CHUNK_BYTES))

        def fail(reason: str) -> None:
            on_done(False, reason)

        def after_begin(reply: dict | None) -> None:
            if not reply or not reply.get("ok"):
                return fail(f"begin rejected: {reply and reply.get('reason')}")
            send_chunk(0)

        def send_chunk(index: int) -> None:
            if index >= len(offsets):
                return commit()
            offset = offsets[index]
            self._request(
                mac,
                lambda: MgmtMessage(
                    MgmtOp.RECONFIG_CHUNK,
                    self._next_seq(),
                    chunk_body(offset, image[offset : offset + CHUNK_BYTES]),
                ),
                lambda reply: (
                    send_chunk(index + 1)
                    if reply and reply.get("ok")
                    else fail(f"chunk {index} failed")
                ),
            )

        def commit() -> None:
            self._request(
                mac,
                lambda: MgmtMessage.control(
                    MgmtOp.RECONFIG_COMMIT, self._next_seq(), signature=signature
                ),
                after_commit,
            )

        def after_commit(reply: dict | None) -> None:
            if not reply or not reply.get("ok"):
                return fail(f"commit rejected: {reply and reply.get('reason')}")
            if not reboot:
                return on_done(True, "stored")
            self.boot_select(mac, slot, after_select)

        def after_select(reply: dict | None) -> None:
            if not reply or not reply.get("ok"):
                return fail("boot select rejected")
            self.reboot(
                mac,
                lambda reply: on_done(bool(reply and reply.get("ok")), "rebooting")
                if reply
                else fail("reboot not acknowledged"),
            )

        self._request(
            mac,
            lambda: MgmtMessage.control(
                MgmtOp.RECONFIG_BEGIN,
                self._next_seq(),
                slot=slot,
                total_len=len(image),
                sha256=hashlib.sha256(image).hexdigest(),
            ),
            after_begin,
        )

    # ------------------------------------------------------------------
    # Rolling upgrade
    # ------------------------------------------------------------------
    def rolling_upgrade(
        self,
        macs: list[str],
        bitstream: Bitstream,
        slot: int,
        on_done: Callable[[UpgradeReport], None],
        settle_s: float = 0.2,
        deploy_key: bytes | None = None,
    ) -> None:
        """Upgrade modules one at a time, verifying each before the next.

        Before touching a module the controller snapshots its current
        boot slot.  After each deploy+reboot it waits ``settle_s`` (to
        cover the reprogram downtime), then health-probes the module: it
        must answer, report the new application, and not be degraded.  A
        failed probe triggers an automatic *rollback* — boot-select back
        to the snapshot slot and reboot — before the rollout stops (the
        canary behaviour a fleet operator wants).
        """
        report = UpgradeReport()
        queue = list(macs)

        def next_module() -> None:
            if not queue:
                return on_done(report)
            mac = queue.pop(0)
            # Snapshot the pre-upgrade boot slot for a possible rollback.
            self.hello(mac, lambda reply, m=mac: start_deploy(m, reply))

        def start_deploy(mac: str, reply: dict | None) -> None:
            if not reply or not reply.get("ok"):
                report.failed.append((mac, "unreachable before upgrade"))
                return on_done(report)
            previous_slot = int(reply.get("boot_slot", 0))
            self.deploy(
                mac,
                bitstream,
                slot,
                lambda ok, reason, m=mac, p=previous_slot: after_deploy(
                    m, p, ok, reason
                ),
                deploy_key=deploy_key,
            )

        def after_deploy(mac: str, previous_slot: int, ok: bool, reason: str) -> None:
            if not ok:
                report.failed.append((mac, reason))
                return on_done(report)  # stop the rollout
            self.sim.schedule(settle_s, probe, mac, previous_slot)

        def probe(mac: str, previous_slot: int) -> None:
            self.hello(
                mac, lambda reply, m=mac, p=previous_slot: after_probe(m, p, reply)
            )

        def after_probe(mac: str, previous_slot: int, reply: dict | None) -> None:
            healthy = (
                reply is not None
                and reply.get("ok")
                and reply.get("app") == bitstream.app_name
                and not reply.get("degraded")
            )
            if healthy:
                report.upgraded.append(mac)
                return next_module()
            reason = (
                "health probe timed out"
                if reply is None
                else "verification failed"
                if reply.get("app") != bitstream.app_name
                else "module degraded after upgrade"
            )
            rollback(mac, previous_slot, reason)

        def rollback(mac: str, previous_slot: int, reason: str) -> None:
            def after_rollback_reboot(reply: dict | None) -> None:
                if reply and reply.get("ok"):
                    report.rolled_back.append(mac)
                report.failed.append((mac, reason))
                on_done(report)  # stop the rollout after a canary failure

            def after_rollback_select(reply: dict | None) -> None:
                if not reply or not reply.get("ok"):
                    report.failed.append((mac, f"{reason}; rollback failed"))
                    return on_done(report)
                self.reboot(mac, after_rollback_reboot)

            self.boot_select(mac, previous_slot, after_rollback_select)

        next_module()
