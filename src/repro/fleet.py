"""Fleet orchestration: centralized control of many FlexSFPs (§4.1).

"[A network-accessible control interface] is essential for centralized
orchestration across a fleet of FlexSFPs, while preserving the
independence of per-port behavior."

:class:`FleetController` is that orchestrator: it speaks the management
protocol over a simulated network port, matches replies to requests by
sequence number, discovers modules via broadcast HELLO, reads/writes
their tables and counters, streams signed bitstreams, and performs
*rolling upgrades* — one module at a time, verifying each comes back
with the new application before touching the next.

Everything is event-driven: operations take completion callbacks and the
controller enforces per-request timeouts, so lost frames (or dead
modules) surface as errors rather than hangs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from ._util import int_to_mac
from .core.mgmt import MgmtMessage, MgmtOp, chunk_body, mgmt_frame
from .errors import ControlPlaneError
from .fpga.bitstream import Bitstream
from .packet import Packet
from .sim.engine import EventHandle, Simulator
from .sim.link import Port
from .sim.stats import Counter

BROADCAST = "ff:ff:ff:ff:ff:ff"
DEFAULT_TIMEOUT_S = 20e-3
CHUNK_BYTES = 1024

ReplyCallback = Callable[[dict | None], None]
"""Receives the reply's JSON body, or None on timeout."""


@dataclass
class ModuleInfo:
    """What discovery learned about one module."""

    mac: str
    app: str
    device: str
    shell: str
    boot_slot: int
    tables: list[str] = field(default_factory=list)


@dataclass
class UpgradeReport:
    """Outcome of a rolling upgrade."""

    upgraded: list[str] = field(default_factory=list)
    failed: list[tuple[str, str]] = field(default_factory=list)  # (mac, reason)

    @property
    def ok(self) -> bool:
        return not self.failed


class _Pending:
    __slots__ = ("callback", "timer")

    def __init__(self, callback: ReplyCallback, timer: EventHandle) -> None:
        self.callback = callback
        self.timer = timer


class FleetController:
    """The management-plane orchestrator."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "fleet",
        auth_key: bytes = b"flexsfp-mgmt-key",
        mac: str | int = "02:0c:00:00:00:0f",
        rate_bps: float = 1e9,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        self.sim = sim
        self.name = name
        self.auth_key = auth_key
        self.mac = mac
        self.timeout_s = timeout_s
        self.port = Port(sim, f"{name}.mgmt", rate_bps=rate_bps)
        self.port.attach(self._on_rx)
        self._seq = 0
        self._pending: dict[int, _Pending] = {}
        self._discovered: dict[str, ModuleInfo] = {}
        self._discovering = False
        self.timeouts = Counter(f"{name}.timeouts")
        self.naks = Counter(f"{name}.naks")

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _send(
        self,
        dst_mac: str | int,
        message: MgmtMessage,
        on_reply: ReplyCallback | None,
        track: bool = True,
    ) -> None:
        frame = mgmt_frame(message, self.auth_key, self.mac, dst_mac)
        if track and on_reply is not None:
            timer = self.sim.schedule(self.timeout_s, self._timeout, message.seq)
            self._pending[message.seq] = _Pending(on_reply, timer)
        self.port.send(frame)

    def _timeout(self, seq: int) -> None:
        pending = self._pending.pop(seq, None)
        if pending is not None:
            self.timeouts.count()
            pending.callback(None)

    def _on_rx(self, port: Port, packet: Packet) -> None:
        try:
            message = MgmtMessage.unpack(packet.payload, self.auth_key)
        except ControlPlaneError:
            return
        if message.opcode not in (MgmtOp.ACK, MgmtOp.NAK):
            return
        body = message.json_body()
        if message.opcode is MgmtOp.NAK:
            self.naks.count()
        if self._discovering and body.get("ok") and "app" in body and "device" in body:
            eth = packet.eth
            mac = int_to_mac(eth.src) if eth is not None else "?"
            self._discovered[mac] = ModuleInfo(
                mac=mac,
                app=str(body["app"]),
                device=str(body["device"]),
                shell=str(body.get("shell", "")),
                boot_slot=int(body.get("boot_slot", 0)),
                tables=list(body.get("tables", [])),
            )
        pending = self._pending.pop(message.seq, None)
        if pending is not None:
            pending.timer.cancel()
            pending.callback(body)

    # ------------------------------------------------------------------
    # Basic operations
    # ------------------------------------------------------------------
    def hello(self, mac: str | int, on_reply: ReplyCallback) -> None:
        self._send(
            mac, MgmtMessage.control(MgmtOp.HELLO, self._next_seq()), on_reply
        )

    def discover(
        self,
        window_s: float,
        on_done: Callable[[dict[str, ModuleInfo]], None],
    ) -> None:
        """Broadcast HELLO; after ``window_s``, report every responder."""
        self._discovered = {}
        self._discovering = True
        # Broadcast replies are matched by the discovery sniffer above;
        # the per-request tracking is a no-op callback.
        self._send(
            BROADCAST,
            MgmtMessage.control(MgmtOp.HELLO, self._next_seq()),
            None,
            track=False,
        )

        def finish() -> None:
            self._discovering = False
            on_done(dict(self._discovered))

        self.sim.schedule(window_s, finish)

    def table_add(
        self, mac: str | int, table: str, key, value, on_reply: ReplyCallback
    ) -> None:
        self._send(
            mac,
            MgmtMessage.control(
                MgmtOp.TABLE_ADD, self._next_seq(), table=table, key=key, value=value
            ),
            on_reply,
        )

    def counter_read(self, mac: str | int, on_reply: ReplyCallback) -> None:
        self._send(
            mac, MgmtMessage.control(MgmtOp.COUNTER_READ, self._next_seq()), on_reply
        )

    # ------------------------------------------------------------------
    # Bitstream deployment
    # ------------------------------------------------------------------
    def deploy(
        self,
        mac: str | int,
        bitstream: Bitstream,
        slot: int,
        on_done: Callable[[bool, str], None],
        deploy_key: bytes | None = None,
        reboot: bool = True,
    ) -> None:
        """Stream a bitstream into ``slot``; optionally boot into it.

        ``on_done(ok, reason)`` fires after the commit (and, with
        ``reboot``, after BOOT_SELECT + REBOOT are acknowledged).
        """
        image = bitstream.to_bytes()
        signature = bitstream.sign(
            deploy_key if deploy_key is not None else self.auth_key
        ).hex()
        offsets = list(range(0, len(image), CHUNK_BYTES))

        def fail(reason: str) -> None:
            on_done(False, reason)

        def after_begin(reply: dict | None) -> None:
            if not reply or not reply.get("ok"):
                return fail(f"begin rejected: {reply and reply.get('reason')}")
            send_chunk(0)

        def send_chunk(index: int) -> None:
            if index >= len(offsets):
                return commit()
            offset = offsets[index]
            message = MgmtMessage(
                MgmtOp.RECONFIG_CHUNK,
                self._next_seq(),
                chunk_body(offset, image[offset : offset + CHUNK_BYTES]),
            )
            self._send(
                mac,
                message,
                lambda reply: (
                    send_chunk(index + 1)
                    if reply and reply.get("ok")
                    else fail(f"chunk {index} failed")
                ),
            )

        def commit() -> None:
            self._send(
                mac,
                MgmtMessage.control(
                    MgmtOp.RECONFIG_COMMIT, self._next_seq(), signature=signature
                ),
                after_commit,
            )

        def after_commit(reply: dict | None) -> None:
            if not reply or not reply.get("ok"):
                return fail(f"commit rejected: {reply and reply.get('reason')}")
            if not reboot:
                return on_done(True, "stored")
            self._send(
                mac,
                MgmtMessage.control(MgmtOp.BOOT_SELECT, self._next_seq(), slot=slot),
                after_select,
            )

        def after_select(reply: dict | None) -> None:
            if not reply or not reply.get("ok"):
                return fail("boot select rejected")
            self._send(
                mac,
                MgmtMessage.control(MgmtOp.REBOOT, self._next_seq()),
                lambda reply: on_done(bool(reply and reply.get("ok")), "rebooting")
                if reply
                else fail("reboot not acknowledged"),
            )

        self._send(
            mac,
            MgmtMessage.control(
                MgmtOp.RECONFIG_BEGIN,
                self._next_seq(),
                slot=slot,
                total_len=len(image),
                sha256=hashlib.sha256(image).hexdigest(),
            ),
            after_begin,
        )

    # ------------------------------------------------------------------
    # Rolling upgrade
    # ------------------------------------------------------------------
    def rolling_upgrade(
        self,
        macs: list[str],
        bitstream: Bitstream,
        slot: int,
        on_done: Callable[[UpgradeReport], None],
        settle_s: float = 0.2,
        deploy_key: bytes | None = None,
    ) -> None:
        """Upgrade modules one at a time, verifying each before the next.

        After each deploy+reboot the controller waits ``settle_s`` (to
        cover the reprogram downtime), then HELLOs the module and checks
        it reports the new application.  A failure stops the rollout —
        the canary behaviour a fleet operator wants.
        """
        report = UpgradeReport()
        queue = list(macs)

        def next_module() -> None:
            if not queue:
                return on_done(report)
            mac = queue.pop(0)
            self.deploy(
                mac,
                bitstream,
                slot,
                lambda ok, reason, m=mac: after_deploy(m, ok, reason),
                deploy_key=deploy_key,
            )

        def after_deploy(mac: str, ok: bool, reason: str) -> None:
            if not ok:
                report.failed.append((mac, reason))
                return on_done(report)  # stop the rollout
            self.sim.schedule(settle_s, verify, mac)

        def verify(mac: str) -> None:
            self.hello(mac, lambda reply, m=mac: after_verify(m, reply))

        def after_verify(mac: str, reply: dict | None) -> None:
            if reply and reply.get("ok") and reply.get("app") == bitstream.app_name:
                report.upgraded.append(mac)
                next_module()
            else:
                report.failed.append((mac, "verification failed"))
                on_done(report)

        next_module()
